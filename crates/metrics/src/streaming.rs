//! O(1)-memory streaming job statistics for open-system (service) runs.
//!
//! A closed-batch run keeps every [`JobRecord`] and computes its report
//! exactly ([`SimReport::compute`]); that is O(jobs) memory — fatal for
//! service runs streaming millions of arrivals. [`StreamingJobStats`]
//! consumes records one at a time and keeps only:
//!
//! * online moments (Welford) for wait, bounded slowdown, and turnaround;
//! * P² quantile sketches for p50/p95/p99 wait and p95 bounded slowdown
//!   (five markers each — see `dmhpc_des::stats::P2Quantile` for the error
//!   characteristics: exact below five samples, a few percent relative
//!   error on heavy-tailed inputs at scale);
//! * outcome/borrowing/inflation counters;
//! * per-user wait sums for Jain fairness — O(users), which is bounded by
//!   the workload model's user population, not by job count;
//! * SLO attainment: the fraction of measured jobs whose wait met a
//!   configured latency target.
//!
//! The footprint is therefore constant in the number of jobs observed, and
//! [`StreamingJobStats::report`] synthesizes the same [`SimReport`] shape a
//! batch run produces (quantiles are sketch estimates; the per-class
//! breakdown, which needs per-job records, is empty).

use crate::classes::{ClassBreakdown, ClassThresholds};
use crate::fairness::jain_index;
use crate::jobstats::{JobOutcome, JobRecord};
use crate::summary::{FaultSummary, SimReport};
use dmhpc_des::stats::{OnlineStats, P2Quantile};
use std::collections::BTreeMap;

/// Time-weighted system-level inputs for a streaming report — what
/// [`crate::RunData`] carries for batch runs, minus the record vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemSeriesStats {
    /// Simulated span from first arrival to last finish, seconds.
    pub makespan_s: f64,
    /// Time-weighted fraction of nodes busy.
    pub node_util: f64,
    /// Time-weighted fraction of pool capacity in use (0 without pools).
    pub pool_util: f64,
    /// Time-weighted fraction of node DRAM pinned by jobs.
    pub dram_util: f64,
    /// Time-weighted mean queue depth.
    pub queue_depth_mean: f64,
    /// Maximum queue depth.
    pub queue_depth_max: f64,
}

/// Streaming (constant-memory) accumulator over [`JobRecord`]s.
///
/// Outcome filtering matches [`SimReport::compute`] exactly: rejected jobs
/// count but contribute no latency stats, terminal failures that never
/// started likewise, and everything that ran feeds the moment/sketch
/// accumulators.
#[derive(Debug, Clone)]
pub struct StreamingJobStats {
    observed: u64,
    completed: usize,
    killed: usize,
    rejected: usize,
    failed: usize,
    ran: usize,
    wait: OnlineStats,
    wait_p50: P2Quantile,
    wait_p95: P2Quantile,
    wait_p99: P2Quantile,
    bsld: OnlineStats,
    bsld_p95: P2Quantile,
    turnaround: OnlineStats,
    borrowed: usize,
    far: OnlineStats,
    dil: OnlineStats,
    inflated: usize,
    inflation_node_s: f64,
    /// user → (wait sum, count); O(distinct users).
    user_waits: BTreeMap<u32, (f64, u32)>,
    slo_wait_s: Option<f64>,
    slo_met: u64,
    slo_measured: u64,
}

impl StreamingJobStats {
    /// An empty accumulator. `slo_wait_s`, when set, is the wait-time
    /// target used for SLO attainment.
    pub fn new(slo_wait_s: Option<f64>) -> Self {
        StreamingJobStats {
            observed: 0,
            completed: 0,
            killed: 0,
            rejected: 0,
            failed: 0,
            ran: 0,
            wait: OnlineStats::new(),
            wait_p50: P2Quantile::new(0.5),
            wait_p95: P2Quantile::new(0.95),
            wait_p99: P2Quantile::new(0.99),
            bsld: OnlineStats::new(),
            bsld_p95: P2Quantile::new(0.95),
            turnaround: OnlineStats::new(),
            borrowed: 0,
            far: OnlineStats::new(),
            dil: OnlineStats::new(),
            inflated: 0,
            inflation_node_s: 0.0,
            user_waits: BTreeMap::new(),
            slo_wait_s,
            slo_met: 0,
            slo_measured: 0,
        }
    }

    /// Fold one record in; the record is not retained.
    pub fn observe(&mut self, r: &JobRecord) {
        self.observed += 1;
        match r.outcome {
            JobOutcome::Completed => self.completed += 1,
            JobOutcome::Killed => self.killed += 1,
            JobOutcome::Rejected => {
                self.rejected += 1;
                return;
            }
            JobOutcome::Failed => {
                self.failed += 1;
                if r.start.is_none() {
                    return;
                }
            }
        }
        self.ran += 1;
        if let Some(w) = r.wait() {
            let w = w.as_secs_f64();
            self.wait.push(w);
            self.wait_p50.push(w);
            self.wait_p95.push(w);
            self.wait_p99.push(w);
            let e = self.user_waits.entry(r.job.user).or_insert((0.0, 0));
            e.0 += w;
            e.1 += 1;
            self.slo_measured += 1;
            if let Some(slo) = self.slo_wait_s {
                if w <= slo {
                    self.slo_met += 1;
                }
            }
        }
        if let Some(b) = r.bounded_slowdown() {
            self.bsld.push(b);
            self.bsld_p95.push(b);
        }
        if let Some(t) = r.turnaround() {
            self.turnaround.push(t.as_secs_f64());
        }
        if r.borrowed_pool() {
            self.borrowed += 1;
            self.far.push(r.far_fraction());
            self.dil.push(r.dilation_actual);
        }
        if r.inflated() {
            self.inflated += 1;
            self.inflation_node_s += r.inflation_overhead_node_secs();
        }
    }

    /// Total records folded in (all outcomes).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Streaming p99-wait estimate, seconds.
    pub fn p99_wait_s(&self) -> f64 {
        self.wait_p99.value()
    }

    /// Fraction of measured (started) jobs whose wait met the SLO target.
    /// `None` when no target is configured — absence, not a vacuous 1.0,
    /// so a legitimate 0-second target stays measurable. With a target but
    /// nothing measured yet, attainment is vacuously `Some(1.0)`.
    pub fn slo_attained(&self) -> Option<f64> {
        self.slo_wait_s.map(|_| {
            if self.slo_measured > 0 {
                self.slo_met as f64 / self.slo_measured as f64
            } else {
                1.0
            }
        })
    }

    /// The headline SLO numbers of this accumulator.
    pub fn service_summary(&self, warmup_skipped: u64) -> ServiceSummary {
        ServiceSummary {
            observed: self.observed,
            warmup_skipped,
            p99_wait_s: self.wait_p99.value(),
            slo_wait_s: self.slo_wait_s,
            slo_attained: self.slo_attained(),
        }
    }

    /// Synthesize the batch-shaped [`SimReport`] from the sketches.
    /// Quantile fields carry P² estimates; `classes` is empty (per-class
    /// breakdowns need per-job records, which a streaming run never keeps).
    pub fn report(
        &self,
        label: &str,
        sys: &SystemSeriesStats,
        faults: &FaultSummary,
        thresholds: &ClassThresholds,
    ) -> SimReport {
        let days = sys.makespan_s / 86_400.0;
        let frac = |num: usize| {
            if self.ran == 0 {
                0.0
            } else {
                num as f64 / self.ran as f64
            }
        };
        let user_means: Vec<f64> = self
            .user_waits
            .values()
            .map(|&(sum, n)| sum / n as f64)
            .collect();
        SimReport {
            label: label.to_string(),
            completed: self.completed,
            killed: self.killed,
            rejected: self.rejected,
            failed: self.failed,
            interruptions: faults.interruptions,
            rework_s: faults.rework_s,
            avail_util: faults.avail_util,
            mean_wait_s: self.wait.mean(),
            p50_wait_s: self.wait_p50.value(),
            p95_wait_s: self.wait_p95.value(),
            max_wait_s: self.wait.max().max(0.0),
            mean_bsld: self.bsld.mean(),
            p95_bsld: self.bsld_p95.value(),
            mean_turnaround_s: self.turnaround.mean(),
            makespan_h: sys.makespan_s / 3600.0,
            throughput_jobs_per_day: if days > 0.0 {
                self.completed as f64 / days
            } else {
                0.0
            },
            node_util: sys.node_util,
            pool_util: sys.pool_util,
            dram_util: sys.dram_util,
            queue_depth_mean: sys.queue_depth_mean,
            queue_depth_max: sys.queue_depth_max,
            borrowed_fraction: frac(self.borrowed),
            mean_far_fraction: self.far.mean(),
            mean_dilation_borrowers: self.dil.mean(),
            inflated_fraction: frac(self.inflated),
            inflation_overhead_node_h: self.inflation_node_s / 3600.0,
            user_fairness: jain_index(&user_means),
            classes: ClassBreakdown::compute(&[], thresholds),
        }
    }
}

/// Headline open-system metrics of one service run — what the streaming
/// observer knows beyond the synthesized [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceSummary {
    /// Jobs that finished inside the measurement window (all outcomes).
    pub observed: u64,
    /// Jobs discarded by the warmup cutoff (finished before the window).
    pub warmup_skipped: u64,
    /// Streaming p99-wait estimate, seconds.
    pub p99_wait_s: f64,
    /// Configured wait-SLO target, seconds; `None` when no target was set
    /// (absence is not the same as a 0-second target, which is legal and
    /// measurable).
    pub slo_wait_s: Option<f64>,
    /// Fraction of measured jobs whose wait met the SLO target; `None`
    /// when no target was configured.
    pub slo_attained: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::RunData;
    use dmhpc_des::rng::Pcg64;
    use dmhpc_des::time::SimTime;
    use dmhpc_workload::JobBuilder;

    fn rec(id: u64, user: u32, arrival: u64, wait: u64, run: u64) -> JobRecord {
        JobRecord {
            job: JobBuilder::new(id)
                .user(user)
                .arrival_secs(arrival)
                .runtime_secs(run.max(1), 2 * run.max(1))
                .build(),
            outcome: JobOutcome::Completed,
            start: Some(SimTime::from_secs(arrival + wait)),
            finish: Some(SimTime::from_secs(arrival + wait + run)),
            nodes_allocated: 1,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        }
    }

    fn sys() -> SystemSeriesStats {
        SystemSeriesStats {
            makespan_s: 86_400.0,
            node_util: 0.8,
            pool_util: 0.3,
            dram_util: 0.4,
            queue_depth_mean: 2.5,
            queue_depth_max: 10.0,
        }
    }

    /// Satellite acceptance: streaming quantile estimates track the exact
    /// batch quantiles within documented relative-error bounds.
    #[test]
    fn sketch_matches_exact_summary_quantiles() {
        let mut rng = Pcg64::new(41);
        let mut records = Vec::with_capacity(200_000);
        for i in 0..200_000u64 {
            // Exponential waits (mean 600 s) — heavy enough a tail to
            // stress the sketches the way real queue waits do.
            let wait = (-rng.next_f64_open().ln() * 600.0) as u64;
            let run = 100 + (i % 900);
            records.push(rec(i, (i % 50) as u32, i, wait, run));
        }
        let mut stream = StreamingJobStats::new(None);
        for r in &records {
            stream.observe(r);
        }
        let exact = SimReport::compute(
            &RunData {
                label: "exact".into(),
                records: records.clone(),
                makespan_s: 86_400.0,
                node_util: 0.8,
                pool_util: 0.3,
                dram_util: 0.4,
                queue_depth_mean: 2.5,
                queue_depth_max: 10.0,
                faults: FaultSummary::default(),
            },
            &ClassThresholds::standard(1024),
        );
        let approx = stream.report(
            "approx",
            &sys(),
            &FaultSummary::default(),
            &ClassThresholds::standard(1024),
        );
        // Means are exact (same Welford accumulation).
        assert!((approx.mean_wait_s - exact.mean_wait_s).abs() < 1e-6);
        assert_eq!(approx.max_wait_s, exact.max_wait_s);
        assert_eq!(approx.completed, exact.completed);
        // Documented sketch bounds: ≤ 5% relative error at p50/p95,
        // ≤ 10% at p99, on 200k exponential samples.
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(approx.p50_wait_s, exact.p50_wait_s) < 0.05,
            "p50 {} vs exact {}",
            approx.p50_wait_s,
            exact.p50_wait_s
        );
        assert!(
            rel(approx.p95_wait_s, exact.p95_wait_s) < 0.05,
            "p95 {} vs exact {}",
            approx.p95_wait_s,
            exact.p95_wait_s
        );
        assert!(
            rel(approx.p95_bsld, exact.p95_bsld) < 0.05,
            "p95 bsld {} vs exact {}",
            approx.p95_bsld,
            exact.p95_bsld
        );
        let mut exact_cdf = dmhpc_des::stats::CdfCollector::with_capacity(records.len());
        for r in &records {
            exact_cdf.push(r.wait().unwrap().as_secs_f64());
        }
        let exact_p99 = exact_cdf.quantile(0.99);
        assert!(
            rel(stream.p99_wait_s(), exact_p99) < 0.10,
            "p99 {} vs exact {exact_p99}",
            stream.p99_wait_s()
        );
        // Fairness agrees exactly: same per-user aggregation.
        assert!((approx.user_fairness - exact.user_fairness).abs() < 1e-12);
    }

    /// Acceptance: a multi-million-job stream completes in a fixed
    /// footprint — the accumulator's only growth dimension is the distinct
    /// user count, never the job count.
    #[test]
    fn multi_million_jobs_through_fixed_footprint() {
        let mut stats = StreamingJobStats::new(Some(1800.0));
        let mut rng = Pcg64::new(77);
        let mut r = rec(0, 0, 0, 0, 600);
        const N: u64 = 3_000_000;
        for i in 0..N {
            // Mutate the one reusable record in place: no per-job
            // allocation anywhere on this path.
            let wait = (-rng.next_f64_open().ln() * 900.0) as u64;
            r.job.user = (i % 128) as u32;
            r.job.arrival = SimTime::from_secs(i);
            r.start = Some(SimTime::from_secs(i + wait));
            r.finish = Some(SimTime::from_secs(i + wait + 600));
            stats.observe(&r);
        }
        assert_eq!(stats.observed(), N);
        assert!(
            stats.user_waits.len() <= 128,
            "state grows with users ({}), never with jobs",
            stats.user_waits.len()
        );
        // Exponential(900): p50 ≈ 624, p99 ≈ 4144; SLO 1800 s ≈ 1 − e⁻²
        // ≈ 0.865 attainment.
        let s = stats.service_summary(0);
        let attained = s.slo_attained.expect("target configured");
        assert!((attained - 0.865).abs() < 0.01, "{attained}");
        assert!(
            (s.p99_wait_s - 4144.0).abs() / 4144.0 < 0.10,
            "{}",
            s.p99_wait_s
        );
        assert_eq!(s.observed, N);
        assert_eq!(s.slo_wait_s, Some(1800.0));
    }

    #[test]
    fn outcome_filtering_matches_batch_compute() {
        let mut stats = StreamingJobStats::new(None);
        let mut records = vec![rec(1, 0, 0, 100, 1000), rec(2, 0, 0, 300, 1000)];
        records.push(JobRecord::rejected(JobBuilder::new(3).build()));
        let mut killed = rec(4, 0, 0, 0, 500);
        killed.outcome = JobOutcome::Killed;
        records.push(killed);
        let mut failed = rec(5, 0, 0, 0, 400);
        failed.outcome = JobOutcome::Failed;
        records.push(failed);
        records.push(JobRecord::failed_unstarted(JobBuilder::new(6).build()));
        for r in &records {
            stats.observe(r);
        }
        let exact = SimReport::compute(
            &RunData {
                label: "t".into(),
                records,
                makespan_s: 86_400.0,
                node_util: 0.8,
                pool_util: 0.3,
                dram_util: 0.4,
                queue_depth_mean: 2.5,
                queue_depth_max: 10.0,
                faults: FaultSummary::default(),
            },
            &ClassThresholds::standard(1024),
        );
        let got = stats.report(
            "t",
            &sys(),
            &FaultSummary::default(),
            &ClassThresholds::standard(1024),
        );
        assert_eq!(got.completed, exact.completed);
        assert_eq!(got.killed, exact.killed);
        assert_eq!(got.rejected, exact.rejected);
        assert_eq!(got.failed, exact.failed);
        assert!((got.mean_wait_s - exact.mean_wait_s).abs() < 1e-9);
        assert_eq!(got.max_wait_s, exact.max_wait_s);
        assert!((got.throughput_jobs_per_day - exact.throughput_jobs_per_day).abs() < 1e-9);
    }

    #[test]
    fn slo_attainment_counts_measured_jobs_only() {
        let mut stats = StreamingJobStats::new(Some(200.0));
        stats.observe(&rec(1, 0, 0, 100, 600)); // met
        stats.observe(&rec(2, 0, 0, 200, 600)); // met (inclusive)
        stats.observe(&rec(3, 0, 0, 500, 600)); // missed
        stats.observe(&JobRecord::rejected(JobBuilder::new(4).build())); // not measured
        assert!((stats.slo_attained().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let s = stats.service_summary(7);
        assert_eq!(s.observed, 4);
        assert_eq!(s.warmup_skipped, 7);
        // Without a target, attainment and target are absent, not the
        // 0.0/1.0 sentinels that used to shadow a real 0-second target.
        let none = StreamingJobStats::new(None);
        assert_eq!(none.slo_attained(), None);
        assert_eq!(none.service_summary(0).slo_wait_s, None);
        assert_eq!(none.service_summary(0).slo_attained, None);
    }

    /// A 0-second target is legal and measurable — it used to be
    /// conflated with "no target" and read a vacuous 1.0.
    #[test]
    fn zero_second_target_is_measurable() {
        let mut stats = StreamingJobStats::new(Some(0.0));
        stats.observe(&rec(1, 0, 0, 0, 600)); // started instantly: met
        stats.observe(&rec(2, 0, 0, 50, 600)); // waited: missed
        assert_eq!(stats.slo_attained(), Some(0.5));
        let s = stats.service_summary(0);
        assert_eq!(s.slo_wait_s, Some(0.0));
        assert_eq!(s.slo_attained, Some(0.5));
    }
}
