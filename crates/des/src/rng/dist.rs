//! Statistical distributions for workload synthesis.
//!
//! All continuous distributions implement [`Distribution`] and draw from a
//! [`Pcg64`]. Parameter validation happens at construction and panics with a
//! clear message — distribution parameters come from static configuration,
//! so an invalid parameter is a programming error, not a runtime condition.
//!
//! The set here is exactly what the workload models need: exponential
//! inter-arrivals, lognormal/Pareto memory footprints, the two-stage
//! hyper-Gamma runtime model of Lublin & Feitelson, Zipf user popularity,
//! Walker-alias categorical mixes, and empirical resampling of trace columns.

use super::Pcg64;

/// A continuous distribution over `f64`.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut Pcg64) -> f64;

    /// Draw `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut Pcg64, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Degenerate distribution: always `value`. Useful for ablations that pin a
/// parameter the full model samples.
#[derive(Debug, Clone, Copy)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// A distribution that always returns `value`.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "Constant requires a finite value");
        Constant { value }
    }
}

impl Distribution for Constant {
    fn sample(&self, _rng: &mut Pcg64) -> f64 {
        self.value
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on `[lo, hi)`; requires `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Uniform requires finite lo < hi (got {lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`). The canonical
/// inter-arrival model for Poisson job submission.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with rate `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential requires rate > 0 (got {rate})"
        );
        Exponential { rate }
    }

    /// Exponential with the given mean (`mean > 0`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Exponential requires mean > 0 (got {mean})"
        );
        Exponential { rate: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Normal (Gaussian) via the Box–Muller transform. Draws two uniforms per
/// sample and discards the second variate — slightly wasteful but stateless,
/// which keeps sampling order-independent for reproducibility.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Normal with mean `mean` and standard deviation `std > 0`.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite() && std > 0.0,
            "Normal requires finite mean and std > 0 (got {mean}, {std})"
        );
        Normal { mean, std }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std * r * theta.cos()
    }
}

/// Lognormal: `exp(N(mu, sigma))`. The standard model for per-node memory
/// footprints — most jobs are small, a heavy right tail is large.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Lognormal with log-space parameters `mu`, `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Lognormal parameterized by the *linear-space* median and the
    /// multiplicative spread `sigma` (log-space std). `median > 0`.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "LogNormal requires median > 0 (got {median})"
        );
        Self::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Gamma with shape `k` and scale `theta` (mean `k*theta`), sampled with
/// Marsaglia & Tsang's squeeze method; shapes below 1 use the standard
/// `U^(1/k)` boost.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Gamma with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "Gamma requires shape > 0 and scale > 0 (got {shape}, {scale})"
        );
        Gamma { shape, scale }
    }

    fn sample_standard(shape: f64, rng: &mut Pcg64) -> f64 {
        if shape < 1.0 {
            // Boost: X ~ Gamma(shape+1), return X * U^(1/shape).
            let x = Self::sample_standard(shape + 1.0, rng);
            return x * rng.next_f64_open().powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // One standard normal via Box–Muller.
            let u1 = rng.next_f64_open();
            let u2 = rng.next_f64();
            let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_f64_open();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        Self::sample_standard(self.shape, rng) * self.scale
    }
}

/// Weibull with shape `k` and scale `lambda`. Models job runtimes with
/// either infant-mortality (`k < 1`) or wear-out (`k > 1`) shapes; also the
/// standard hardware-failure inter-arrival model.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Weibull with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "Weibull requires shape > 0 and scale > 0 (got {shape}, {scale})"
        );
        Weibull { shape, scale }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Pareto (type I) with minimum `xm` and tail index `alpha`. Heavy-tailed
/// memory and runtime extremes.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Pareto with scale `xm > 0` and shape `alpha > 0`.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(
            xm.is_finite() && xm > 0.0 && alpha.is_finite() && alpha > 0.0,
            "Pareto requires xm > 0 and alpha > 0 (got {xm}, {alpha})"
        );
        Pareto { xm, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        self.xm / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Two-stage hyper-Gamma: with probability `p` draw from the first Gamma,
/// otherwise from the second. This is the runtime model of Lublin &
/// Feitelson's workload generator — the mixture captures the short-job mass
/// and long-job tail that a single Gamma cannot.
#[derive(Debug, Clone, Copy)]
pub struct HyperGamma {
    p: f64,
    first: Gamma,
    second: Gamma,
}

impl HyperGamma {
    /// Mixture `p * first + (1-p) * second`; requires `0 <= p <= 1`.
    pub fn new(p: f64, first: Gamma, second: Gamma) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "HyperGamma requires 0 <= p <= 1 (got {p})"
        );
        HyperGamma { p, first, second }
    }
}

impl Distribution for HyperGamma {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        if rng.chance(self.p) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }
}

/// Zipf over ranks `1..=n` with exponent `s`: `P(k) ∝ 1/k^s`. Models user
/// submission popularity (a few users submit most jobs). Sampled by binary
/// search over a precomputed cumulative table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Zipf over `1..=n` ranks with exponent `s >= 0`; `n >= 1`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf requires n >= 1");
        assert!(s.is_finite() && s >= 0.0, "Zipf requires s >= 0 (got {s})");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draw a rank in `[0, n)` (0-based).
    pub fn sample_index(&self, rng: &mut Pcg64) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Walker–Vose alias method: O(1) sampling from an arbitrary categorical
/// distribution after O(n) setup. Used for job-class mixes.
#[derive(Debug, Clone)]
pub struct DiscreteAlias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl DiscreteAlias {
    /// Build from non-negative weights (not necessarily normalized). At
    /// least one weight must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "DiscreteAlias requires weights");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "DiscreteAlias requires finite non-negative weights"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "DiscreteAlias requires a positive total weight"
        );
        let n = weights.len();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&l), Some(&g)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[l] = scaled[l];
            alias[l] = g;
            scaled[g] = (scaled[g] + scaled[l]) - 1.0;
            if scaled[g] < 1.0 {
                small.push(g);
            } else {
                large.push(g);
            }
        }
        for &g in large.iter().chain(small.iter()) {
            prob[g] = 1.0;
        }
        DiscreteAlias { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no categories (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample_index(&self, rng: &mut Pcg64) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Empirical distribution: inverse-CDF resampling with linear interpolation
/// between order statistics. This is how replayed trace columns (e.g. a real
/// machine's memory-per-node histogram) drive the synthetic generator.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Build from observed samples (at least one, all finite).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Empirical requires samples");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "Empirical requires finite samples"
        );
        // lint: allow(panic) — the samplers never produce NaN; a non-finite sample is a distribution bug
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Empirical { sorted: samples }
    }

    /// The `q`-quantile (`0 <= q <= 1`) with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut Pcg64) -> f64 {
        self.quantile(rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(d: &impl Distribution, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = Pcg64::new(seed);
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sq / n as f64 - mean * mean)
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant::new(3.25);
        let mut rng = Pcg64::new(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.25);
        }
    }

    #[test]
    fn uniform_moments() {
        let (mean, var) = moments(&Uniform::new(2.0, 6.0), 1, 200_000);
        assert!((mean - 4.0).abs() < 0.02, "mean {mean}");
        assert!((var - 16.0 / 12.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let (mean, var) = moments(&Exponential::new(0.5), 2, 200_000);
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        let (m2, _) = moments(&Exponential::with_mean(7.0), 3, 200_000);
        assert!((m2 - 7.0).abs() < 0.1, "mean {m2}");
    }

    #[test]
    fn normal_moments() {
        let (mean, var) = moments(&Normal::new(-3.0, 2.0), 4, 200_000);
        assert!((mean + 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(64.0, 1.0);
        let mut rng = Pcg64::new(5);
        let mut v = d.sample_n(&mut rng, 100_001);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[50_000];
        assert!(
            (median / 64.0 - 1.0).abs() < 0.05,
            "median {median} should be near 64"
        );
        assert!(v[0] > 0.0, "lognormal is positive");
    }

    #[test]
    fn gamma_moments_high_shape() {
        // mean = k*theta, var = k*theta^2
        let (mean, var) = moments(&Gamma::new(4.0, 3.0), 6, 200_000);
        assert!((mean - 12.0).abs() < 0.1, "mean {mean}");
        assert!((var - 36.0).abs() < 1.2, "var {var}");
    }

    #[test]
    fn gamma_moments_low_shape() {
        let (mean, var) = moments(&Gamma::new(0.4, 2.0), 7, 400_000);
        assert!((mean - 0.8).abs() < 0.02, "mean {mean}");
        assert!((var - 1.6).abs() < 0.12, "var {var}");
    }

    #[test]
    fn weibull_mean() {
        // k=2, lambda=1: mean = Γ(1.5) = sqrt(pi)/2 ≈ 0.8862
        let (mean, _) = moments(&Weibull::new(2.0, 1.0), 8, 200_000);
        assert!((mean - 0.8862).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_bounds_and_mean() {
        let d = Pareto::new(1.0, 3.0);
        let mut rng = Pcg64::new(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        // mean = alpha*xm/(alpha-1) = 1.5
        let (mean, _) = moments(&d, 10, 400_000);
        assert!((mean - 1.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn hypergamma_mixture_mean() {
        let d = HyperGamma::new(
            0.7,
            Gamma::new(2.0, 1.0),  // mean 2
            Gamma::new(10.0, 2.0), // mean 20
        );
        let (mean, _) = moments(&d, 11, 200_000);
        let expect = 0.7 * 2.0 + 0.3 * 20.0;
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn zipf_rank_ordering() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Pcg64::new(12);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 should beat rank 10");
        assert!(counts[9] > counts[99], "rank 10 should beat rank 100");
        // P(rank 1) = (1/1^1.2)/H where H = sum 1/k^1.2
        let h: f64 = (1..=100).map(|k| 1.0 / (k as f64).powf(1.2)).sum();
        let p1 = 1.0 / h;
        let observed = counts[0] as f64 / 100_000.0;
        assert!((observed - p1).abs() < 0.01, "observed {observed} vs {p1}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Pcg64::new(13);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05);
        }
    }

    #[test]
    fn alias_matches_weights() {
        let d = DiscreteAlias::new(&[1.0, 0.0, 3.0, 6.0]);
        assert_eq!(d.len(), 4);
        let mut rng = Pcg64::new(14);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never fire");
        let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((fracs[0] - 0.1).abs() < 0.01);
        assert!((fracs[2] - 0.3).abs() < 0.01);
        assert!((fracs[3] - 0.6).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn alias_rejects_all_zero() {
        DiscreteAlias::new(&[0.0, 0.0]);
    }

    #[test]
    fn empirical_resamples_range() {
        let d = Empirical::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 5.0);
        assert_eq!(d.quantile(0.5), 3.0);
        let mut rng = Pcg64::new(15);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn empirical_single_sample() {
        let d = Empirical::new(vec![2.5]);
        assert_eq!(d.quantile(0.3), 2.5);
    }

    /// Kolmogorov–Smirnov sanity check of the exponential sampler against
    /// the analytic CDF — catches subtle inversion bugs that moment tests
    /// miss.
    #[test]
    fn exponential_ks_test() {
        let d = Exponential::new(1.0);
        let mut rng = Pcg64::new(16);
        let n = 20_000;
        let mut v = d.sample_n(&mut rng, n);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut ks: f64 = 0.0;
        for (i, &x) in v.iter().enumerate() {
            let cdf = 1.0 - (-x).exp();
            let emp_hi = (i + 1) as f64 / n as f64;
            let emp_lo = i as f64 / n as f64;
            ks = ks.max((cdf - emp_lo).abs()).max((emp_hi - cdf).abs());
        }
        // 1% critical value ≈ 1.63/sqrt(n) ≈ 0.0115
        assert!(ks < 0.0115, "KS statistic {ks} too large");
    }
}
