//! Deterministic random-number generation and statistical distributions.
//!
//! The RNG is part of the reproduction surface: synthetic workloads must be
//! bit-identical across machines and releases, so the generator and every
//! distribution are implemented here rather than pulled from a crate whose
//! stream may change between versions.
//!
//! * [`SplitMix64`] — a tiny 64-bit seeder/stream-splitter (Steele et al.).
//! * [`Pcg64`] — PCG XSL-RR 128/64 (O'Neill), the workhorse generator.
//! * [`dist`] — the distributions workload synthesis needs, all sampled
//!   through the [`Distribution`](dist::Distribution) trait.
//!
//! ## Stream splitting
//!
//! Parallel parameter sweeps need independent streams per simulation.
//! [`Pcg64::fork`] derives a child generator from the parent's seed material
//! and a caller-supplied label, so a sweep indexed by `(seed, run_id)` gets a
//! reproducible, statistically independent stream regardless of thread
//! scheduling.

mod pcg;
mod splitmix;

pub mod dist;

pub use pcg::Pcg64;
pub use splitmix::SplitMix64;
