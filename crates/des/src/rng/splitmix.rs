//! SplitMix64 — seed expansion and stream derivation.
//!
//! The variant of Steele, Lea & Flood's SplitMix used by the Java 8
//! `SplittableRandom` and, by convention, as the seeder for nearly every
//! modern PRNG. One `u64` of state, period 2^64, passes BigCrush when used
//! as intended (seed expansion, not bulk generation).

/// SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose output stream is a pure function of `seed`.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mix two words into one; used to derive child-stream seeds from a
    /// parent seed plus a label without consuming parent state.
    #[inline]
    pub fn mix(a: u64, b: u64) -> u64 {
        let mut sm = SplitMix64::new(a ^ b.rotate_left(32).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        sm.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix_is_symmetric_free() {
        // mix must depend on argument order (streams (a,b) and (b,a) differ).
        assert_ne!(SplitMix64::mix(1, 2), SplitMix64::mix(2, 1));
        assert_eq!(SplitMix64::mix(7, 9), SplitMix64::mix(7, 9));
    }
}
