//! PCG XSL-RR 128/64 ("pcg64") — the simulator's workhorse generator.
//!
//! 128 bits of LCG state with an xorshift-low + random-rotation output
//! function (O'Neill 2014). Period 2^128 per stream, 2^127 selectable
//! streams, passes PractRand/BigCrush, and steps in a handful of cycles.

use super::splitmix::SplitMix64;

/// Default multiplier for the 128-bit PCG LCG (from the PCG reference
/// implementation).
const PCG_MUL: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG64 generator. Create with [`Pcg64::new`] (single `u64` seed) or
/// [`Pcg64::new_stream`] (seed + explicit stream id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; always odd.
    inc: u128,
    /// The seed material this generator was built from, retained so
    /// [`fork`](Pcg64::fork) can derive independent child streams.
    root: u64,
}

impl Pcg64 {
    /// A generator determined entirely by `seed`. Internally expands the
    /// seed with SplitMix64 into 128-bit state and stream material.
    pub fn new(seed: u64) -> Self {
        Self::new_stream(seed, 0xDA3E_39CB_94B9_5BDB)
    }

    /// A generator on an explicit stream. Two generators with the same seed
    /// but different streams produce independent sequences.
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s_hi = sm.next_u64() as u128;
        let s_lo = sm.next_u64() as u128;
        let mut sm2 = SplitMix64::new(stream);
        let i_hi = sm2.next_u64() as u128;
        let i_lo = sm2.next_u64() as u128;
        let initstate = (s_hi << 64) | s_lo;
        let initseq = (i_hi << 64) | i_lo;
        // Reference seeding dance: guarantees well-mixed state even for
        // pathological seeds like 0.
        let mut rng = Pcg64 {
            state: 0,
            inc: (initseq << 1) | 1,
            root: seed,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(initstate);
        rng.step();
        rng
    }

    /// Derive an independent child generator labelled `label`. The child is
    /// a pure function of `(parent seed material, label)` — not of how many
    /// numbers the parent has drawn — so parallel sweeps are reproducible
    /// regardless of scheduling order.
    pub fn fork(&self, label: u64) -> Pcg64 {
        let child_seed = SplitMix64::mix(self.root, label);
        let child_stream = SplitMix64::mix(label, !self.root);
        Pcg64::new_stream(child_seed, child_stream)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
    }

    /// The next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// The next 32 pseudo-random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in the open interval `(0, 1)`; safe to pass to `ln`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires bound > 0");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let m = (r as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi ({lo} >= {hi})");
        lo + self.bounded_u64(hi - lo)
    }

    /// A uniform index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.bounded_u64(len as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64::new(7);
        let mut b = Pcg64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg64::new_stream(7, 1);
        let mut b = Pcg64::new_stream(7, 2);
        let equal = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = Pcg64::new(99);
        let mut burn = parent.clone();
        for _ in 0..50 {
            burn.next_u64();
        }
        // fork() must not depend on how much the parent has been used.
        let mut c1 = parent.fork(3);
        let mut c2 = burn.fork(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = parent.fork(4);
        let equal = (0..256)
            .filter(|_| parent.fork(3).next_u64() == other.next_u64())
            .count();
        assert!(equal <= 1);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = Pcg64::new(12345);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn open_interval_never_zero() {
        let mut rng = Pcg64::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn bounded_is_unbiased_ish() {
        let mut rng = Pcg64::new(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.bounded_u64(7) as usize] += 1;
        }
        let expect = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Pcg64::new(8);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn bounded_zero_panics() {
        Pcg64::new(1).bounded_u64(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moved something (probability of identity ~ 1/50!).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Pcg64::new(4);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42u8];
        assert_eq!(rng.choose(&one), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg64::new(11);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
