//! Exact empirical CDFs for figure output.

/// Collects samples and answers exact quantile/CDF queries. Sorting is done
/// lazily and cached; pushing after a query re-dirties the cache.
#[derive(Debug, Clone, Default)]
pub struct CdfCollector {
    samples: Vec<f64>,
    sorted: bool,
}

impl CdfCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector pre-sized for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        CdfCollector {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Record one observation (must be finite).
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "CdfCollector sample must be finite");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                // lint: allow(panic) — recorders only admit finite observations; NaN here is a recorder bug
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) with linear interpolation; 0 when
    /// empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Empirical CDF value `P(X <= x)`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let k = self.samples.partition_point(|&s| s <= x);
        k as f64 / self.samples.len() as f64
    }

    /// Mean of the samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// At most `n` figure-ready `(value, cumulative fraction)` points,
    /// evenly spaced in rank. Always includes the minimum and maximum.
    pub fn points(&mut self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "points requires n >= 2");
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let len = self.samples.len();
        let count = n.min(len);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let rank = if count == 1 {
                len - 1
            } else {
                ((len - 1) as f64 * i as f64 / (count - 1) as f64).round() as usize
            };
            out.push((self.samples[rank], (rank + 1) as f64 / len as f64));
        }
        out
    }

    /// Two-sample Kolmogorov–Smirnov distance: the maximum vertical gap
    /// between the two empirical CDFs. Used by tests to compare distributions
    /// and by the workload module to validate generator calibration.
    pub fn ks_distance(&mut self, other: &mut CdfCollector) -> f64 {
        if self.samples.is_empty() || other.samples.is_empty() {
            return 1.0;
        }
        self.ensure_sorted();
        other.ensure_sorted();
        let (a, b) = (&self.samples, &other.samples);
        let (mut i, mut j) = (0usize, 0usize);
        let mut d: f64 = 0.0;
        while i < a.len() && j < b.len() {
            let x = a[i].min(b[j]);
            while i < a.len() && a[i] <= x {
                i += 1;
            }
            while j < b.len() && b[j] <= x {
                j += 1;
            }
            let fa = i as f64 / a.len() as f64;
            let fb = j as f64 / b.len() as f64;
            d = d.max((fa - fb).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_exact() {
        let mut c = CdfCollector::new();
        for x in [4.0, 1.0, 3.0, 2.0, 5.0] {
            c.push(x);
        }
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.quantile(0.25), 2.0);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn cdf_at_values() {
        let mut c = CdfCollector::new();
        for x in [1.0, 2.0, 2.0, 4.0] {
            c.push(x);
        }
        assert_eq!(c.cdf_at(0.5), 0.0);
        assert_eq!(c.cdf_at(1.0), 0.25);
        assert_eq!(c.cdf_at(2.0), 0.75);
        assert_eq!(c.cdf_at(3.9), 0.75);
        assert_eq!(c.cdf_at(4.0), 1.0);
    }

    #[test]
    fn empty_collector() {
        let mut c = CdfCollector::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.cdf_at(1.0), 0.0);
        assert_eq!(c.mean(), 0.0);
        assert!(c.points(2).is_empty());
    }

    #[test]
    fn push_after_query_redirties() {
        let mut c = CdfCollector::new();
        c.push(10.0);
        c.push(0.0);
        assert_eq!(c.quantile(1.0), 10.0);
        c.push(20.0);
        assert_eq!(c.quantile(1.0), 20.0);
        assert_eq!(c.quantile(0.0), 0.0);
    }

    #[test]
    fn points_cover_extremes() {
        let mut c = CdfCollector::new();
        for i in 0..100 {
            c.push(i as f64);
        }
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 99.0);
        assert!((pts[10].1 - 1.0).abs() < 1e-12);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn ks_identical_is_zero() {
        let mut a = CdfCollector::new();
        let mut b = CdfCollector::new();
        for i in 0..1000 {
            a.push(i as f64);
            b.push(i as f64);
        }
        assert!(a.ks_distance(&mut b) < 1e-12);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let mut a = CdfCollector::new();
        let mut b = CdfCollector::new();
        for i in 0..100 {
            a.push(i as f64);
            b.push(1000.0 + i as f64);
        }
        assert!((a.ks_distance(&mut b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_shifted_uniform() {
        let mut a = CdfCollector::new();
        let mut b = CdfCollector::new();
        for i in 0..1000 {
            a.push(i as f64 / 1000.0);
            b.push(i as f64 / 1000.0 + 0.25);
        }
        let d = a.ks_distance(&mut b);
        assert!((d - 0.25).abs() < 0.01, "expected ~0.25, got {d}");
    }

    #[test]
    fn mean_simple() {
        let mut c = CdfCollector::new();
        c.push(1.0);
        c.push(3.0);
        assert_eq!(c.mean(), 2.0);
    }
}
