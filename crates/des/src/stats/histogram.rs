//! Fixed-width and logarithmic histograms.

/// Fixed-width histogram over `[lo, hi)` with explicit under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Histogram requires finite lo < hi (got {lo}, {hi})"
        );
        assert!(nbins > 0, "Histogram requires at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// In-range bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin center, count)` pairs for figure output.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Fraction of in-range mass at or below `x` (empirical CDF over bins).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut cum = self.underflow;
        if x >= self.hi {
            cum += self.bins.iter().sum::<u64>() + self.overflow;
        } else if x >= self.lo {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            cum += self.bins[..=idx].iter().sum::<u64>();
        }
        cum as f64 / self.count as f64
    }
}

/// Log₂ histogram: bin *k* covers `[2^k, 2^(k+1))`, with a dedicated zero
/// bin. Natural for job sizes (1, 2, 4, … nodes) and memory footprints.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    zero: u64,
    /// `bins[k]` counts values in `[2^k, 2^(k+1))`.
    bins: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// An empty log histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a non-negative integer observation.
    pub fn record(&mut self, x: u64) {
        self.count += 1;
        if x == 0 {
            self.zero += 1;
            return;
        }
        let k = 63 - x.leading_zeros() as usize; // floor(log2(x))
        if self.bins.len() <= k {
            self.bins.resize(k + 1, 0);
        }
        self.bins[k] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count of zero-valued observations.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// `(lower bound of bin, count)` pairs, zero bin first when present.
    pub fn rows(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.bins.len() + 1);
        if self.zero > 0 {
            out.push((0, self.zero));
        }
        for (k, &c) in self.bins.iter().enumerate() {
            if c > 0 {
                out.push((1u64 << k, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0); // underflow
        h.record(0.0); // bin 0
        h.record(0.999); // bin 0
        h.record(5.0); // bin 5
        h.record(9.999); // bin 9
        h.record(10.0); // overflow
        h.record(100.0); // overflow
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn cdf_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for i in 0..100 {
            h.record(i as f64);
        }
        let mut prev = 0.0;
        for x in [0.0, 10.0, 25.0, 50.0, 99.0, 100.0, 1000.0] {
            let c = h.cdf_at(x);
            assert!(c >= prev, "CDF must be monotone");
            prev = c;
        }
        assert!((h.cdf_at(1e9) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 2).cdf_at(0.5), 0.0, "empty CDF");
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        for x in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024, 1025] {
            h.record(x);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.zero_count(), 1);
        let rows = h.rows();
        // bins: 0 -> 1, [1,2) -> 2, [2,4) -> 2, [4,8) -> 2, [8,16) -> 1, [1024,2048) -> 2
        assert_eq!(rows[0], (0, 1));
        assert_eq!(rows[1], (1, 2));
        assert_eq!(rows[2], (2, 2));
        assert_eq!(rows[3], (4, 2));
        assert_eq!(rows[4], (8, 1));
        assert_eq!(rows[5], (1024, 2));
    }

    #[test]
    fn log_histogram_powers_of_two_boundary() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX); // top bin must not panic
        assert_eq!(h.rows()[0].0, 1u64 << 63);
    }
}
