//! Time-weighted integration of step functions over simulated time.
//!
//! Utilization, queue depth, and pool occupancy are piecewise-constant in a
//! DES: they change only at events. [`TimeWeighted`] integrates such a step
//! function exactly; [`StepSeries`] additionally records the steps for
//! figure output.

use crate::time::{SimDuration, SimTime};

/// Exact integrator for a piecewise-constant signal.
///
/// Call [`update`](TimeWeighted::update) whenever the signal changes;
/// [`mean_until`](TimeWeighted::mean_until) closes the last segment at the
/// query time. Out-of-order updates panic — events in a DES are causal.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_time: SimTime,
    last_value: f64,
    /// ∫ value dt over closed segments, in value·seconds.
    integral: f64,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// A signal with value `initial` from time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start,
            last_time: start,
            last_value: initial,
            integral: 0.0,
            max: initial,
            min: initial,
        }
    }

    /// Record that the signal takes `value` from time `at` onward.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous update.
    pub fn update(&mut self, at: SimTime, value: f64) {
        let dt = at
            .checked_since(self.last_time)
            // lint: allow(panic) — the engine feeds monotone event times; going backwards is a DES bug
            .expect("TimeWeighted updates must be causal (non-decreasing time)");
        self.integral += self.last_value * dt.as_secs_f64();
        self.last_time = at;
        self.last_value = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Add `delta` to the current value at time `at` (convenience for
    /// counters like queue depth).
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.update(at, v);
    }

    /// The current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The largest value ever set.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The smallest value ever set.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// ∫ value dt from `start` to `end`, in value·seconds.
    pub fn integral_until(&self, end: SimTime) -> f64 {
        let tail = end.saturating_since(self.last_time);
        self.integral + self.last_value * tail.as_secs_f64()
    }

    /// Time-weighted mean over `[start, end]`; 0 for an empty interval.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        let span: SimDuration = end.saturating_since(self.start);
        if span.is_zero() {
            return 0.0;
        }
        self.integral_until(end) / span.as_secs_f64()
    }
}

/// A recorded step series: [`TimeWeighted`] integration plus the actual
/// `(time, value)` breakpoints, for time-series figures.
#[derive(Debug, Clone)]
pub struct StepSeries {
    tw: TimeWeighted,
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// A series starting at `start` with value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        StepSeries {
            tw: TimeWeighted::new(start, initial),
            points: vec![(start, initial)],
        }
    }

    /// Record a new value at `at` (coalesces no-op changes).
    pub fn update(&mut self, at: SimTime, value: f64) {
        if value == self.tw.current() {
            return;
        }
        self.tw.update(at, value);
        self.points.push((at, value));
    }

    /// Add `delta` to the current value.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let v = self.tw.current() + delta;
        self.update(at, v);
    }

    /// The underlying integrator.
    pub fn stats(&self) -> &TimeWeighted {
        &self.tw
    }

    /// All recorded breakpoints.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The series resampled onto at most `n` evenly spaced points over
    /// `[start, end]` (step semantics: value at a sample time is the value
    /// of the most recent breakpoint at or before it). Used to keep figure
    /// output bounded regardless of event count.
    pub fn resample(&self, end: SimTime, n: usize) -> Vec<(SimTime, f64)> {
        assert!(n >= 2, "resample requires at least 2 points");
        let start = self.points[0].0;
        let span = end.saturating_since(start);
        if span.is_zero() {
            return vec![(start, self.points[0].1)];
        }
        let mut out = Vec::with_capacity(n);
        let mut idx = 0usize;
        for i in 0..n {
            let t = start + SimDuration::from_micros(span.as_micros() / (n as u64 - 1) * i as u64);
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= t {
                idx += 1;
            }
            out.push((t, self.points[idx].1));
        }
        out
    }

    /// [`resample`](StepSeries::resample), normalized for figure output:
    /// sample times become fractional hours and every value is divided by
    /// `denom` (pass `1.0` for raw values). This is the one shared
    /// resample-to-N-points path every normalized series helper uses.
    pub fn resample_over(&self, end: SimTime, n: usize, denom: f64) -> Vec<(f64, f64)> {
        self.resample(end, n)
            .into_iter()
            .map(|(t, v)| (t.as_hours_f64(), v / denom))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_steps_exactly() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 5.0); // 0 for 10 s
        tw.update(SimTime::from_secs(20), 2.0); // 5 for 10 s
                                                // then 2 until t=30: mean = (0*10 + 5*10 + 2*10)/30 = 70/30
        let mean = tw.mean_until(SimTime::from_secs(30));
        assert!((mean - 70.0 / 30.0).abs() < 1e-9);
        assert_eq!(tw.max(), 5.0);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn empty_interval_mean_is_zero() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(1), 2.0);
        tw.add(SimTime::from_secs(2), 3.0);
        tw.add(SimTime::from_secs(3), -4.0);
        assert_eq!(tw.current(), 1.0);
        assert_eq!(tw.max(), 5.0);
    }

    #[test]
    #[should_panic(expected = "causal")]
    fn rejects_time_travel() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(10), 0.0);
        tw.update(SimTime::from_secs(5), 1.0);
    }

    #[test]
    fn same_time_update_is_fine() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(1), 2.0);
        tw.update(SimTime::from_secs(1), 3.0); // zero-width segment
        assert_eq!(tw.current(), 3.0);
        let mean = tw.mean_until(SimTime::from_secs(2));
        assert!((mean - (1.0 + 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_coalesces_and_resamples() {
        let mut s = StepSeries::new(SimTime::ZERO, 0.0);
        s.update(SimTime::from_secs(10), 4.0);
        s.update(SimTime::from_secs(10), 4.0); // no-op: coalesced
        s.update(SimTime::from_secs(30), 1.0);
        assert_eq!(s.points().len(), 3);

        let rs = s.resample(SimTime::from_secs(40), 5);
        assert_eq!(rs.len(), 5);
        assert_eq!(rs[0], (SimTime::ZERO, 0.0));
        assert_eq!(rs[1], (SimTime::from_secs(10), 4.0));
        assert_eq!(rs[2], (SimTime::from_secs(20), 4.0));
        assert_eq!(rs[3], (SimTime::from_secs(30), 1.0));
        assert_eq!(rs[4], (SimTime::from_secs(40), 1.0));
    }

    #[test]
    fn resample_over_normalizes_and_converts_to_hours() {
        let mut s = StepSeries::new(SimTime::ZERO, 0.0);
        s.update(SimTime::from_secs(1800), 4.0);
        let rs = s.resample_over(SimTime::from_secs(3600), 3, 8.0);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0], (0.0, 0.0));
        assert_eq!(rs[1], (0.5, 0.5)); // half an hour, 4/8
        assert_eq!(rs[2], (1.0, 0.5));
        // denom 1.0 is the raw series.
        let raw = s.resample_over(SimTime::from_secs(3600), 3, 1.0);
        assert_eq!(raw[1].1, 4.0);
    }

    #[test]
    fn series_integral_matches_tw() {
        let mut s = StepSeries::new(SimTime::ZERO, 1.0);
        s.add(SimTime::from_secs(5), 1.0);
        s.add(SimTime::from_secs(10), -2.0);
        let mean = s.stats().mean_until(SimTime::from_secs(20));
        // 1*5 + 2*5 + 0*10 = 15 over 20 s
        assert!((mean - 0.75).abs() < 1e-9);
    }
}
