//! Online and offline statistics for simulation output.
//!
//! * [`OnlineStats`] — Welford single-pass moments with parallel merge.
//! * [`P2Quantile`] — the Jain–Chlamtac P² streaming quantile estimator,
//!   O(1) memory per tracked quantile.
//! * [`Histogram`] / [`LogHistogram`] — fixed-width and log₂ bins.
//! * [`TimeWeighted`] — integrates a step function over simulated time
//!   (utilization, queue depth, pool occupancy).
//! * [`StepSeries`] — records a (time, value) step series for figure output,
//!   with downsampling.
//! * [`CdfCollector`] — exact empirical CDF over collected samples, with
//!   quantiles, figure-ready point series, and a two-sample KS distance.

mod cdf;
mod histogram;
mod online;
mod quantile;
mod timeweighted;

pub use cdf::CdfCollector;
pub use histogram::{Histogram, LogHistogram};
pub use online::OnlineStats;
pub use quantile::P2Quantile;
pub use timeweighted::{StepSeries, TimeWeighted};
