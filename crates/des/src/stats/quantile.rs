//! P² streaming quantile estimation (Jain & Chlamtac, CACM 1985).
//!
//! Tracks one quantile of a stream in O(1) memory using five markers whose
//! heights are adjusted with a piecewise-parabolic prediction. Used for P95
//! wait/slowdown figures where retaining every sample of a multi-million-job
//! sweep would be wasteful. Accuracy is typically within a fraction of a
//! percent for smooth distributions; the exact [`CdfCollector`]
//! (super::CdfCollector) is used when figures need exact tails.

/// Streaming estimator for a single quantile `q`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    h: [f64; 5],
    /// Integer marker positions (1-based as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    /// Initial observations until the five markers exist.
    startup: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `q` (strictly between 0 and 1).
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "P2Quantile requires 0 < q < 1 (got {q})"
        );
        P2Quantile {
            q,
            h: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            dn: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            startup: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.startup.len() < 5 {
            self.startup.push(x);
            if self.startup.len() == 5 {
                self.startup
                    // lint: allow(panic) — recorders only admit finite observations; NaN here is a recorder bug
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for i in 0..5 {
                    self.h[i] = self.startup[i];
                }
            }
            return;
        }

        // Locate the cell and clamp extremes.
        let k = if x < self.h[0] {
            self.h[0] = x;
            0
        } else if x >= self.h[4] {
            self.h[4] = x;
            3
        } else {
            // h[k] <= x < h[k+1]
            (0..4)
                .find(|&i| self.h[i] <= x && x < self.h[i + 1])
                // lint: allow(panic) — the P² marker heights bracket x by the branch condition above
                .expect("x is within [h0, h4)")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                if self.h[i - 1] < parabolic && parabolic < self.h[i + 1] {
                    self.h[i] = parabolic;
                } else {
                    self.h[i] = self.linear(i, d);
                }
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.h, &self.n);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.h[i] + d * (self.h[j] - self.h[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate. With fewer than five observations, falls
    /// back to the exact quantile of the buffered samples; with none, 0.
    pub fn value(&self) -> f64 {
        if self.count >= 5 {
            return self.h[2];
        }
        if self.startup.is_empty() {
            return 0.0;
        }
        let mut v = self.startup.clone();
        // lint: allow(panic) — recorders only admit finite observations; NaN here is a recorder bug
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let pos = self.q * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::dist::{Distribution, Exponential, Uniform};
    use crate::rng::Pcg64;

    fn exact_quantile(mut v: Vec<f64>, q: f64) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = q * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }

    #[test]
    fn tracks_uniform_median() {
        let d = Uniform::new(0.0, 100.0);
        let mut rng = Pcg64::new(21);
        let mut p2 = P2Quantile::new(0.5);
        let samples = d.sample_n(&mut rng, 100_000);
        for &x in &samples {
            p2.push(x);
        }
        let exact = exact_quantile(samples, 0.5);
        assert!(
            (p2.value() - exact).abs() < 1.0,
            "p2 {} vs exact {exact}",
            p2.value()
        );
    }

    #[test]
    fn tracks_exponential_p95() {
        let d = Exponential::new(0.1); // mean 10
        let mut rng = Pcg64::new(22);
        let mut p2 = P2Quantile::new(0.95);
        let samples = d.sample_n(&mut rng, 200_000);
        for &x in &samples {
            p2.push(x);
        }
        let exact = exact_quantile(samples, 0.95);
        let rel = (p2.value() - exact).abs() / exact;
        assert!(rel < 0.03, "p2 {} vs exact {exact} (rel {rel})", p2.value());
    }

    #[test]
    fn small_streams_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.value(), 0.0);
        p2.push(10.0);
        assert_eq!(p2.value(), 10.0);
        p2.push(20.0);
        assert_eq!(p2.value(), 15.0);
        p2.push(30.0);
        assert_eq!(p2.value(), 20.0);
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn constant_stream() {
        let mut p2 = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p2.push(7.0);
        }
        assert_eq!(p2.value(), 7.0);
    }

    #[test]
    #[should_panic(expected = "0 < q < 1")]
    fn rejects_q_one() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn monotone_under_sorted_input() {
        // Adversarial: sorted input is P²'s weakest case; estimate must
        // still land in the right neighbourhood.
        let mut p2 = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p2.push(i as f64);
        }
        let v = p2.value();
        assert!((v - 5000.0).abs() < 500.0, "estimate {v} too far from 5000");
    }
}
