//! Welford's single-pass mean/variance with parallel merge.

/// Numerically stable streaming moments: count, mean, variance, min, max.
///
/// `merge` implements Chan et al.'s pairwise combination, so per-thread
/// accumulators from a parallel sweep can be reduced exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance; 0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }

    /// Exact combination of two accumulators (Chan's parallel formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 / 3.0)
            .collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..311] {
            left.push(x);
        }
        for &x in &data[311..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean() {
        let mut s = OnlineStats::new();
        s.push(-1.0);
        s.push(1.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Naive sum-of-squares catastrophically cancels here; Welford must not.
        let mut s = OnlineStats::new();
        let offset = 1e9;
        for x in [offset + 1.0, offset + 2.0, offset + 3.0] {
            s.push(x);
        }
        assert!((s.mean() - (offset + 2.0)).abs() < 1e-3);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-6);
    }
}
