//! # dmhpc-des — discrete-event simulation kernel
//!
//! The foundation of the `dmhpc` reproduction: a hand-rolled,
//! fully-deterministic discrete-event simulation (DES) substrate.
//!
//! The crate provides four things, each usable on its own:
//!
//! * [`time`] — integer simulated time ([`SimTime`], [`SimDuration`]): `u64`
//!   microseconds, so event ordering is exact and runs are bit-reproducible.
//! * [`queue`] — pending-event sets: a stable [binary-heap
//!   queue](queue::BinaryHeapQueue) and a [calendar
//!   queue](queue::CalendarQueue) behind one [`queue::EventQueue`]
//!   trait. Equal-time events dequeue in insertion order in both.
//! * [`rng`] — a deterministic PCG64 generator seeded via SplitMix64, plus
//!   the statistical distributions workload synthesis needs (exponential,
//!   lognormal, gamma, Weibull, Pareto, Zipf, hyper-Gamma, alias-method
//!   discrete, empirical).
//! * [`stats`] — online statistics: Welford moments, P² streaming quantiles,
//!   linear/log histograms, time-weighted step functions, CDF collection.
//!
//! Everything is `#![forbid(unsafe_code)]` and dependency-free, so
//! determinism cannot rot underneath the simulator.
//!
//! ## Example
//!
//! ```
//! use dmhpc_des::queue::{BinaryHeapQueue, EventQueue};
//! use dmhpc_des::time::SimTime;
//!
//! let mut q: BinaryHeapQueue<&'static str> = BinaryHeapQueue::new();
//! q.schedule(SimTime::from_secs(10), "finish");
//! q.schedule(SimTime::from_secs(2), "arrive");
//! assert_eq!(q.pop().map(|(t, e)| (t.as_secs(), e)), Some((2, "arrive")));
//! assert_eq!(q.pop().map(|(t, e)| (t.as_secs(), e)), Some((10, "finish")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
pub use rng::Pcg64;
pub use time::{SimDuration, SimTime};
