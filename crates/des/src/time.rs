//! Integer simulated time.
//!
//! Simulated time is measured in whole **microseconds** held in a `u64`.
//! Integer time makes event ordering exact (no float ties) and gives the
//! simulator bit-identical replays for a fixed seed. A microsecond tick is
//! fine enough to represent runtime dilation of second-resolution job traces
//! (a 1e-6 relative error on a 30-day job is ~2.6 s) while `u64` range allows
//! ~584,000 simulated years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds per minute.
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
/// Microseconds per hour.
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
/// Microseconds per day.
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// An absolute instant on the simulation clock (microseconds since t=0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never" / horizon sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `micros` microseconds after the origin.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// An instant `secs` seconds after the origin.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// An instant from fractional seconds (rounded to the nearest microsecond).
    ///
    /// Negative or non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_micros(secs))
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds since the origin.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Fractional hours since the origin.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Time elapsed since `earlier`, or `None` if `earlier` is in the future.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Time elapsed since `earlier`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant advanced by `d`, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min_of(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; used as "infinite" walltime.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A span of `secs` whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// A span of `mins` whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MICROS_PER_MIN)
    }

    /// A span of `hours` whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MICROS_PER_HOUR)
    }

    /// A span from fractional seconds (rounded to the nearest microsecond).
    ///
    /// Negative or non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_micros(secs))
    }

    /// The span in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span in fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The span scaled by a non-negative factor, rounding to the nearest
    /// microsecond. This is how runtime dilation is applied; factors < 1 are
    /// permitted (used when converting dilated wall time back to work).
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN, or the result overflows.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        let scaled = self.0 as f64 * factor;
        assert!(scaled < u64::MAX as f64, "scaled duration overflows u64");
        SimDuration(scaled.round() as u64)
    }

    /// `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max_of(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Ratio of two spans as `f64`. Returns `f64::INFINITY` when dividing a
    /// non-zero span by zero and `0.0` for `0/0`.
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

fn secs_f64_to_micros(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let micros = secs * MICROS_PER_SEC as f64;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        // lint: allow(panic) — operator impls cannot return Result; wrapping the clock silently would corrupt results
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        // lint: allow(panic) — operator impls cannot return Result; wrapping the clock silently would corrupt results
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        // lint: allow(panic) — operator impls cannot return Result; a negative duration is a model bug
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        // lint: allow(panic) — operator impls cannot return Result; wrapping a duration silently would corrupt results
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // lint: allow(panic) — operator impls cannot return Result; a negative duration is a model bug
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        // lint: allow(panic) — operator impls cannot return Result; wrapping a duration silently would corrupt results
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_hms(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_hms(self.0))
    }
}

/// Render microseconds as `[Dd]HH:MM:SS[.ffffff]` (fraction omitted if zero).
fn fmt_hms(micros: u64) -> String {
    let days = micros / MICROS_PER_DAY;
    let rem = micros % MICROS_PER_DAY;
    let hours = rem / MICROS_PER_HOUR;
    let rem = rem % MICROS_PER_HOUR;
    let mins = rem / MICROS_PER_MIN;
    let rem = rem % MICROS_PER_MIN;
    let secs = rem / MICROS_PER_SEC;
    let frac = rem % MICROS_PER_SEC;
    let mut s = String::new();
    if days > 0 {
        s.push_str(&format!("{days}d"));
    }
    s.push_str(&format!("{hours:02}:{mins:02}:{secs:02}"));
    if frac > 0 {
        s.push_str(&format!(".{frac:06}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(5).as_micros(), 5_000_000);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs(), 1);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
    }

    #[test]
    fn f64_conversion_rounds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0000005).as_micros(), 1); // rounds up
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d).as_secs(), 140);
        assert_eq!((t - d).as_secs(), 60);
        assert_eq!(((t + d) - t).as_secs(), 40);
        assert_eq!((d + d).as_secs(), 80);
        assert_eq!((d - d), SimDuration::ZERO);
        assert_eq!((d * 3).as_secs(), 120);
        assert_eq!((d / 2).as_secs(), 20);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scale_dilation() {
        let d = SimDuration::from_secs(100);
        assert_eq!(d.scale(1.5).as_secs(), 150);
        assert_eq!(d.scale(1.0), d);
        assert_eq!(d.scale(0.5).as_secs(), 50);
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
        // Round-trip through a dilate/undilate pair is exact to the microsecond
        // for well-conditioned factors.
        let f = 1.37;
        let dilated = d.scale(f);
        let back = dilated.scale(1.0 / f);
        assert!(back.as_micros().abs_diff(d.as_micros()) <= 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn scale_rejects_negative() {
        let _ = SimDuration::from_secs(1).scale(-0.1);
    }

    #[test]
    fn ratio_handles_zero() {
        let z = SimDuration::ZERO;
        let d = SimDuration::from_secs(10);
        assert_eq!(d.ratio(z), f64::INFINITY);
        assert_eq!(z.ratio(z), 0.0);
        assert!((d.ratio(SimDuration::from_secs(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_of() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(7);
        assert_eq!(a.max_of(b), b);
        assert_eq!(a.min_of(b), a);
        assert_eq!(
            SimDuration::from_secs(3).max_of(SimDuration::from_secs(7)),
            SimDuration::from_secs(7)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(3661).to_string(), "01:01:01");
        assert_eq!(
            SimDuration::from_micros(MICROS_PER_DAY + 500_000).to_string(),
            "1d00:00:00.500000"
        );
        assert_eq!(SimTime::from_secs(59).to_string(), "t=00:00:59");
    }

    #[test]
    fn ordering() {
        let mut v = [
            SimTime::from_secs(5),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[1], SimTime::from_micros(1));
        assert_eq!(v[2], SimTime::from_secs(5));
    }
}
