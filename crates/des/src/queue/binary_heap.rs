//! Stable binary-heap pending-event set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::EventQueue;
use crate::time::SimTime;

/// One heap entry. Ordered by `(time, seq)` so the heap is a *stable*
/// min-queue: `seq` is a monotone insertion counter that breaks time ties in
/// FIFO order.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable min-priority event queue over `std::collections::BinaryHeap`.
///
/// O(log n) schedule and pop; this is the simulator default. See the
/// [module docs](super) for the stability contract.
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> BinaryHeapQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with space for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Total number of events ever scheduled (monotone; used by tests).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for BinaryHeapQueue<T> {
    fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = BinaryHeapQueue::new();
        let times = [50u64, 3, 99, 7, 7, 0, 42];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, _)) = q.pop() {
            out.push(t.as_secs());
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = BinaryHeapQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn with_capacity_and_counters() {
        let mut q = BinaryHeapQueue::with_capacity(16);
        assert_eq!(q.scheduled_count(), 0);
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.scheduled_count(), 2, "pop must not affect the counter");
    }
}
