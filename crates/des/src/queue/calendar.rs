//! Adaptive calendar queue (R. Brown, CACM 1988).
//!
//! The pending-event set is hashed into `nbuckets` "days" of width `w`; a
//! full cycle of buckets is a "year" of length `nbuckets * w`. Extraction
//! scans forward from the current day and only accepts events that fall
//! inside the day's window of the *current* year, so far-future events
//! parked in the same bucket are skipped until their year arrives. When the
//! queue grows or shrinks past thresholds the calendar is rebuilt with a
//! bucket count and width re-estimated from the observed event spacing,
//! which is what gives the amortized O(1) behaviour on well-spaced
//! workloads.
//!
//! This implementation is **stable** (FIFO among equal times) by ordering
//! entries on `(time, seq)` with a monotone insertion counter — a property
//! the plain textbook structure does not guarantee but the simulator
//! requires for deterministic replay.

use super::EventQueue;
use crate::time::SimTime;
use std::cell::Cell;

struct Entry<T> {
    time: u64, // microseconds; denormalized from SimTime for tight loops
    seq: u64,
    payload: T,
}

/// Adaptive calendar queue. See the module-level docs for the algorithm.
pub struct CalendarQueue<T> {
    /// Each bucket is sorted *descending* by `(time, seq)` so the minimum is
    /// `last()` and removal is an O(1) `pop()`.
    buckets: Vec<Vec<Entry<T>>>,
    /// Bucket width in microseconds (>= 1).
    width: u64,
    /// Index of the day the extraction cursor is on.
    cur: usize,
    /// Exclusive upper edge of the cursor day's window in the current year.
    /// u128: accumulating a year of scans past events near `u64::MAX` must
    /// not wrap.
    bucket_top: u128,
    count: usize,
    next_seq: u64,
    /// Memoized current minimum as `(time, seq)`. `peek_time` on the hot
    /// path is O(1) while this is populated; it stays valid across inserts
    /// at-or-after the minimum (the common case — an insert *before* the
    /// cached minimum simply replaces it) and is invalidated by pops and
    /// rebuilds. Interior mutability because peeking is logically `&self`.
    min_cache: Cell<Option<(u64, u64)>>,
}

const MIN_BUCKETS: usize = 8;
const SAMPLE: usize = 32;

impl<T> CalendarQueue<T> {
    /// An empty queue with default geometry (8 buckets × 1 s); the geometry
    /// adapts as events arrive.
    pub fn new() -> Self {
        Self::with_geometry(MIN_BUCKETS, 1_000_000)
    }

    /// An empty queue with an explicit initial bucket count and width
    /// (microseconds). Both are clamped to sane minimums.
    pub fn with_geometry(nbuckets: usize, width_micros: u64) -> Self {
        let n = nbuckets.max(MIN_BUCKETS);
        let width = width_micros.max(1);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            width,
            cur: 0,
            bucket_top: width as u128,
            count: 0,
            next_seq: 0,
            min_cache: Cell::new(None),
        }
    }

    /// Current bucket count (exposed for the resize tests and benches).
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in microseconds.
    pub fn width_micros(&self) -> u64 {
        self.width
    }

    #[inline]
    fn bucket_of(&self, time: u64) -> usize {
        ((time / self.width) % self.buckets.len() as u64) as usize
    }

    /// Lower edge of the cursor day's window.
    #[inline]
    fn window_start(&self) -> u128 {
        self.bucket_top - self.width as u128
    }

    fn insert_entry(buckets: &mut [Vec<Entry<T>>], width: u64, e: Entry<T>) {
        let idx = ((e.time / width) % buckets.len() as u64) as usize;
        let b = &mut buckets[idx];
        // Descending order: find the first element strictly less than `e`
        // (by (time, seq)) and insert before it. Most inserts hit the ends.
        let pos = b.partition_point(|x| (x.time, x.seq) > (e.time, e.seq));
        b.insert(pos, e);
    }

    /// Point the cursor at the day containing `time`.
    fn rewind_to(&mut self, time: u64) {
        self.cur = self.bucket_of(time);
        self.bucket_top = (time as u128 / self.width as u128 + 1) * self.width as u128;
    }

    /// Locate the globally minimal entry (by `(time, seq)`) across buckets.
    fn direct_min(&self) -> Option<(usize, u64, u64)> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(e) = b.last() {
                match best {
                    Some((_, t, s)) if (e.time, e.seq) >= (t, s) => {}
                    _ => best = Some((i, e.time, e.seq)),
                }
            }
        }
        best
    }

    /// Locate the minimum the way `pop` would — scan forward from the
    /// cursor accepting the first in-window entry (the calendar invariant
    /// makes it the global minimum), falling back to [`direct_min`] only
    /// when the next event is more than a year ahead. Non-destructive;
    /// amortized O(1) on well-spaced workloads where `direct_min` alone
    /// would be O(nbuckets) per call.
    ///
    /// [`direct_min`]: CalendarQueue::direct_min
    fn scan_min(&self) -> Option<(usize, u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut i = self.cur;
        let mut top = self.bucket_top;
        for _ in 0..n {
            if let Some(e) = self.buckets[i].last() {
                if (e.time as u128) < top {
                    return Some((i, e.time, e.seq));
                }
            }
            i = (i + 1) % n;
            top += self.width as u128;
        }
        self.direct_min()
    }

    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        if self.count > 2 * n {
            self.rebuild(n * 2);
        } else if n > MIN_BUCKETS && self.count < n / 2 {
            self.rebuild((n / 2).max(MIN_BUCKETS));
        }
    }

    /// Estimate a bucket width from the spacing of a sample of events, then
    /// redistribute everything into `new_n` buckets.
    fn rebuild(&mut self, new_n: usize) {
        let mut sample: Vec<u64> = Vec::with_capacity(SAMPLE);
        'outer: for b in &self.buckets {
            for e in b {
                sample.push(e.time);
                if sample.len() == SAMPLE {
                    break 'outer;
                }
            }
        }
        sample.sort_unstable();
        sample.dedup();
        let new_width = if sample.len() >= 2 {
            let span = sample[sample.len() - 1] - sample[0];
            let gaps = (sample.len() - 1) as u64;
            // Heuristic from Brown: a few events per bucket on average.
            ((span / gaps) * 3).max(1)
        } else {
            self.width
        };

        let mut new_buckets: Vec<Vec<Entry<T>>> = (0..new_n).map(|_| Vec::new()).collect();
        for b in self.buckets.iter_mut() {
            for e in b.drain(..) {
                Self::insert_entry(&mut new_buckets, new_width, e);
            }
        }
        self.buckets = new_buckets;
        self.width = new_width;
        // Bucket indices changed wholesale: the memoized minimum is stale.
        self.min_cache.set(None);
        if let Some((_, t, _)) = self.direct_min() {
            self.rewind_to(t);
        } else {
            self.cur = 0;
            self.bucket_top = self.width as u128;
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn schedule(&mut self, at: SimTime, payload: T) {
        let time = at.as_micros();
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.count == 0 || (time as u128) < self.window_start() {
            // Event lands before the cursor window: rewind so extraction
            // cannot miss it.
            self.rewind_to(time);
        }
        Self::insert_entry(&mut self.buckets, self.width, Entry { time, seq, payload });
        self.count += 1;
        // Keep the memoized minimum exact: an insert before it replaces
        // it, an insert at-or-after leaves it valid. (seq is monotone, so
        // a later insert at the same time never displaces it.)
        match self.min_cache.get() {
            Some((t, s)) if (time, seq) < (t, s) => {
                self.min_cache.set(Some((time, seq)));
            }
            Some(_) => {}
            None => {
                if self.count == 1 {
                    self.min_cache.set(Some((time, seq)));
                }
            }
        }
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.count == 0 {
            return None;
        }
        // The popped entry is the cached minimum; whatever follows it must
        // be rediscovered.
        self.min_cache.set(None);
        let n = self.buckets.len();
        let mut i = self.cur;
        let mut top = self.bucket_top;
        for _ in 0..n {
            let hit = self.buckets[i]
                .last()
                .is_some_and(|e| (e.time as u128) < top);
            if hit {
                // lint: allow(panic) — the scan above selected this bucket because it is non-empty
                let e = self.buckets[i].pop().expect("non-empty bucket");
                self.cur = i;
                self.bucket_top = top;
                self.count -= 1;
                self.maybe_resize();
                return Some((SimTime::from_micros(e.time), e.payload));
            }
            i = (i + 1) % n;
            top += self.width as u128;
        }
        // A whole year scanned with no event in-window: the next event is
        // more than a year ahead. Find it directly and jump the calendar.
        // lint: allow(panic) — caller branch checked count > 0; an entry must exist
        let (bi, t, _) = self.direct_min().expect("count > 0 implies an entry");
        self.rewind_to(t);
        // lint: allow(panic) — direct_min just located the minimum inside this bucket
        let e = self.buckets[bi].pop().expect("bucket holds the minimum");
        self.count -= 1;
        self.maybe_resize();
        Some((SimTime::from_micros(e.time), e.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        // O(1) while the memo is warm; a cursor scan — the same amortized
        // O(1) walk `pop` does, not an O(nbuckets) sweep — refills it
        // after a pop or rebuild.
        if let Some((t, _)) = self.min_cache.get() {
            return Some(SimTime::from_micros(t));
        }
        let found = self.scan_min();
        self.min_cache.set(found.map(|(_, t, s)| (t, s)));
        found.map(|(_, t, _)| SimTime::from_micros(t))
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_order() {
        let mut q = CalendarQueue::new();
        let times = [5u64, 1, 1, 9, 0, 7, 3, 3, 3, 8, 2];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev, "out of order: {t} after {prev}");
            prev = t;
            n += 1;
        }
        assert_eq!(n, times.len());
    }

    #[test]
    fn far_future_events_skip_years() {
        let mut q = CalendarQueue::with_geometry(8, 1_000);
        // Same bucket, different years.
        q.schedule(SimTime::from_micros(500), "now");
        q.schedule(SimTime::from_micros(500 + 8 * 1_000), "next-year");
        q.schedule(SimTime::from_micros(500 + 80 * 1_000), "decade");
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "next-year");
        assert_eq!(q.pop().unwrap().1, "decade");
        assert!(q.pop().is_none());
    }

    #[test]
    fn rewind_on_earlier_insert() {
        let mut q = CalendarQueue::with_geometry(8, 1_000);
        q.schedule(SimTime::from_secs(100), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // Cursor now sits at t=100s; insert something much earlier.
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_secs(50), "mid");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "mid");
    }

    #[test]
    fn grows_and_shrinks() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i * 37), i);
        }
        assert!(q.nbuckets() > MIN_BUCKETS, "queue should have grown");
        for _ in 0..9_990 {
            q.pop().unwrap();
        }
        assert!(
            q.nbuckets() < 10_000 / 2,
            "queue should have shrunk, has {} buckets",
            q.nbuckets()
        );
        for _ in 0..10 {
            q.pop().unwrap();
        }
        assert!(q.is_empty());
    }

    #[test]
    fn handles_max_time_sentinel() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::MAX, "never");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(q.pop().unwrap().1, "soon");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::MAX);
        assert_eq!(e, "never");
    }

    #[test]
    fn identical_times_fifo_across_resize() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(42);
        for i in 0..500u32 {
            q.schedule(t, i);
        }
        for i in 0..500u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for &t in &[9u64, 4, 6, 2, 8] {
            q.schedule(SimTime::from_secs(t), t);
        }
        while let Some(pt) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            assert_eq!(pt, t);
        }
    }

    #[test]
    fn peek_cache_survives_inserts_on_either_side_of_min() {
        let mut q = CalendarQueue::with_geometry(8, 1_000);
        q.schedule(SimTime::from_secs(50), "mid");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
        // Insert after the minimum: memo stays valid and correct.
        q.schedule(SimTime::from_secs(99), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
        // Insert before the minimum: memo must be replaced.
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        // Ties: the earlier insert keeps the minimum (FIFO).
        q.schedule(SimTime::from_secs(1), "early-2");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop().unwrap().1, "early-2");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
        q.pop();
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_across_resizes_and_years() {
        // Push enough to force growth, spanning several "years", with
        // peeks interleaved so the memo is exercised across rebuilds.
        let mut q = CalendarQueue::with_geometry(8, 100);
        let mut expected = Vec::new();
        for i in 0..3_000u64 {
            let t = (i * 7919) % 50_000; // scattered, many collisions
            expected.push(t);
            q.schedule(SimTime::from_micros(t), i);
            if i % 17 == 0 {
                let min = *expected.iter().min().unwrap();
                assert_eq!(q.peek_time(), Some(SimTime::from_micros(min)));
            }
        }
        expected.sort_unstable();
        for &t in &expected {
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(t)));
            assert_eq!(q.pop().unwrap().0, SimTime::from_micros(t));
        }
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn zero_width_clamped() {
        let q: CalendarQueue<()> = CalendarQueue::with_geometry(0, 0);
        assert!(q.width_micros() >= 1);
        assert!(q.nbuckets() >= MIN_BUCKETS);
    }
}
