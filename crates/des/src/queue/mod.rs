//! Pending-event set implementations.
//!
//! A discrete-event simulator spends much of its life inserting future events
//! and extracting the earliest one. Two implementations are provided behind
//! the [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — a `std::collections::BinaryHeap` of
//!   `(time, seq)`-keyed entries. O(log n) everywhere, excellent constants,
//!   the default choice.
//! * [`CalendarQueue`] — the classic Brown (1988) calendar queue with
//!   adaptive bucket widths: amortized O(1) insert/extract when event-time
//!   spacing is well-behaved, which batch-scheduling workloads are.
//!
//! Both are **stable**: events scheduled for the same instant dequeue in the
//! order they were inserted. Stability is not cosmetic — the simulator relies
//! on it for deterministic replays, and scheduler semantics ("arrival is
//! processed before the finish that was scheduled later for the same tick")
//! would otherwise depend on queue internals. Differential property tests in
//! `tests/` drive both implementations with the same operation sequence and
//! assert identical output.

mod binary_heap;
mod calendar;

pub use binary_heap::BinaryHeapQueue;
pub use calendar::CalendarQueue;

use crate::time::SimTime;

/// A pending-event set: a stable min-priority queue keyed by [`SimTime`].
pub trait EventQueue<T> {
    /// Schedule `payload` to fire at `at`.
    fn schedule(&mut self, at: SimTime, payload: T);

    /// Remove and return the earliest event. Ties dequeue in insertion order.
    fn pop(&mut self) -> Option<(SimTime, T)>;

    /// The time of the earliest pending event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercise any implementation through the common trait.
    fn exercise<Q: EventQueue<u32>>(mut q: Q) {
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);

        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));

        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 2)));
        // Interleave: schedule earlier than remaining content.
        q.schedule(SimTime::from_secs(25), 4);
        assert_eq!(q.pop(), Some((SimTime::from_secs(25), 4)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 3)));
        assert!(q.is_empty());
    }

    /// FIFO order among equal-time events.
    fn exercise_stability<Q: EventQueue<u32>>(mut q: Q) {
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_secs(1), 999);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 999)));
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)), "FIFO violated at {i}");
        }
    }

    #[test]
    fn heap_basic() {
        exercise(BinaryHeapQueue::new());
    }

    #[test]
    fn heap_stability() {
        exercise_stability(BinaryHeapQueue::new());
    }

    #[test]
    fn calendar_basic() {
        exercise(CalendarQueue::new());
    }

    #[test]
    fn calendar_stability() {
        exercise_stability(CalendarQueue::new());
    }
}
