//! Trace surgery: load rescaling, truncation, filtering, origin shifts.
//!
//! All transforms are pure `Workload → Workload` functions so sweeps can
//! compose them (`rescale_load(truncate(w, n), nodes, ρ)`), and all preserve
//! job identity — only arrival times or membership change.

use crate::job::Job;
use crate::workload_set::Workload;
use dmhpc_des::time::{SimDuration, SimTime};

/// Shift arrivals so the first job arrives at t=0 (relative times are
/// preserved exactly).
pub fn shift_to_origin(w: &Workload) -> Workload {
    let Some(first) = w.first_arrival() else {
        return w.clone();
    };
    let jobs = w
        .iter()
        .map(|j| Job {
            arrival: SimTime::from_micros(j.arrival.as_micros() - first.as_micros()),
            ..j.clone()
        })
        .collect();
    Workload::from_jobs(jobs)
}

/// Keep only the first `n` jobs by arrival order.
pub fn truncate(w: &Workload, n: usize) -> Workload {
    Workload::from_jobs(w.iter().take(n).cloned().collect())
}

/// Keep only jobs satisfying `pred`.
pub fn filter<F: Fn(&Job) -> bool>(w: &Workload, pred: F) -> Workload {
    Workload::from_jobs(w.iter().filter(|j| pred(j)).cloned().collect())
}

/// Compress or stretch inter-arrival gaps by `factor` (< 1 ⇒ arrivals come
/// faster ⇒ higher load). Job shapes are untouched; this is the standard
/// load-scaling methodology for trace-driven scheduling studies.
pub fn scale_interarrivals(w: &Workload, factor: f64) -> Workload {
    assert!(
        factor.is_finite() && factor > 0.0,
        "inter-arrival factor must be positive, got {factor}"
    );
    let Some(first) = w.first_arrival() else {
        return w.clone();
    };
    let jobs = w
        .iter()
        .map(|j| {
            let offset = j.arrival.as_micros() - first.as_micros();
            let scaled = (offset as f64 * factor).round() as u64;
            Job {
                arrival: SimTime::from_micros(first.as_micros() + scaled),
                ..j.clone()
            }
        })
        .collect();
    Workload::from_jobs(jobs)
}

/// Rescale arrivals so the offered load on a `total_nodes` machine equals
/// `target` (node-seconds per available node-second over the arrival span).
/// Returns the workload unchanged if it has fewer than 2 jobs or zero work.
pub fn rescale_load(w: &Workload, total_nodes: u32, target: f64) -> Workload {
    assert!(
        target.is_finite() && target > 0.0,
        "target load must be positive, got {target}"
    );
    let current = w.offered_load(total_nodes);
    if current == 0.0 {
        return w.clone();
    }
    // load ∝ 1/span ∝ 1/factor  ⇒  factor = current/target.
    scale_interarrivals(w, current / target)
}

/// Cap every job's node request at `max_nodes` (per-node memory is
/// recomputed so the total footprint is preserved). Used when replaying a
/// big machine's trace onto a smaller simulated one.
pub fn cap_nodes(w: &Workload, max_nodes: u32) -> Workload {
    assert!(max_nodes >= 1, "max_nodes must be >= 1");
    let jobs = w
        .iter()
        .map(|j| {
            if j.nodes <= max_nodes {
                j.clone()
            } else {
                Job {
                    nodes: max_nodes,
                    mem_per_node: j.mem_per_node_at(max_nodes),
                    ..j.clone()
                }
            }
        })
        .collect();
    Workload::from_jobs(jobs)
}

/// Drop jobs longer than `max_runtime` (some archive traces contain
/// never-ending daemons that distort load calculations).
pub fn drop_longer_than(w: &Workload, max_runtime: SimDuration) -> Workload {
    filter(w, |j| j.runtime <= max_runtime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobBuilder;

    fn base() -> Workload {
        Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(100)
                .nodes(10)
                .runtime_secs(100, 200)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(200)
                .nodes(20)
                .runtime_secs(50, 100)
                .build(),
            JobBuilder::new(3)
                .arrival_secs(400)
                .nodes(1)
                .runtime_secs(1000, 2000)
                .build(),
        ])
    }

    #[test]
    fn shift_to_origin_zeroes_first() {
        let w = shift_to_origin(&base());
        assert_eq!(w.first_arrival(), Some(SimTime::ZERO));
        assert_eq!(w.jobs()[1].arrival, SimTime::from_secs(100));
        assert_eq!(w.jobs()[2].arrival, SimTime::from_secs(300));
        // Idempotent.
        assert_eq!(shift_to_origin(&w), w);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let w = truncate(&base(), 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.jobs()[1].id.0, 2);
        assert_eq!(truncate(&base(), 100).len(), 3);
    }

    #[test]
    fn filter_by_predicate() {
        let w = filter(&base(), |j| j.nodes > 5);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn scale_interarrivals_halves_gaps() {
        let w = scale_interarrivals(&base(), 0.5);
        assert_eq!(w.jobs()[0].arrival, SimTime::from_secs(100), "origin fixed");
        assert_eq!(w.jobs()[1].arrival, SimTime::from_secs(150));
        assert_eq!(w.jobs()[2].arrival, SimTime::from_secs(250));
    }

    #[test]
    fn rescale_load_hits_target() {
        let w = base();
        let target = 0.5;
        let scaled = rescale_load(&w, 64, target);
        let achieved = scaled.offered_load(64);
        assert!(
            (achieved - target).abs() / target < 0.01,
            "achieved {achieved} vs target {target}"
        );
        // Job bodies unchanged.
        for (a, b) in w.iter().zip(scaled.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.nodes, b.nodes);
        }
    }

    #[test]
    fn rescale_up_and_down() {
        let w = base();
        // base() offered load on 64 nodes is 3000/(64·300) ≈ 0.156.
        let hi = rescale_load(&w, 64, 1.2);
        let lo = rescale_load(&w, 64, 0.05);
        assert!(hi.arrival_span() < w.arrival_span());
        assert!(lo.arrival_span() > w.arrival_span());
    }

    #[test]
    fn cap_nodes_preserves_total_memory() {
        let w = Workload::from_jobs(vec![JobBuilder::new(1).nodes(16).mem_per_node(100).build()]);
        let capped = cap_nodes(&w, 4);
        let j = &capped.jobs()[0];
        assert_eq!(j.nodes, 4);
        assert_eq!(j.mem_per_node, 400);
        assert_eq!(j.total_mem(), 1600);
    }

    #[test]
    fn drop_longer_than_filters() {
        let w = drop_longer_than(&base(), SimDuration::from_secs(100));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn empty_workload_transforms() {
        let e = Workload::new();
        assert!(shift_to_origin(&e).is_empty());
        assert!(scale_interarrivals(&e, 2.0).is_empty());
        assert!(rescale_load(&e, 10, 0.5).is_empty());
    }
}
