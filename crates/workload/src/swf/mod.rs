//! Standard Workload Format (SWF) support.
//!
//! SWF is the lingua franca of the Parallel Workloads Archive: one line per
//! job, 18 whitespace-separated integer fields, `-1` for missing values,
//! header lines starting with `;`. This module reads SWF into
//! [`Workload`](crate::Workload)s and writes workloads back out, so
//! evaluations can run on real traces unchanged.
//!
//! Field reference (1-based, per Feitelson's spec):
//!
//! | # | Field | Use here |
//! |---|-------|----------|
//! | 1 | Job number | [`JobId`] |
//! | 2 | Submit time (s) | arrival |
//! | 3 | Wait time (s) | ignored (scheduler output, not input) |
//! | 4 | Run time (s) | base runtime |
//! | 5 | Allocated processors | node count fallback |
//! | 6 | Average CPU time | ignored |
//! | 7 | Used memory (KiB/proc) | per-node footprint (preferred) |
//! | 8 | Requested processors | node count (preferred) |
//! | 9 | Requested time (s) | walltime |
//! | 10 | Requested memory (KiB/proc) | footprint fallback |
//! | 11 | Status | filter (configurable) |
//! | 12 | User id | user |
//! | 13–18 | group/app/queue/partition/dependency/think | ignored |
//!
//! SWF counts *processors*; we convert to nodes with
//! [`SwfConfig::cores_per_node`]. SWF has no memory-intensity column, so a
//! deterministic per-job intensity is derived from the job id (stable across
//! parses, configurable range).
//!
//! [`JobId`]: crate::JobId

mod parse;
mod write;

pub use parse::{parse_reader, parse_str, SwfTrace};
pub use write::{write_string, write_to};

/// How to map SWF's processor-oriented fields onto the node-oriented job
/// model.
#[derive(Debug, Clone)]
pub struct SwfConfig {
    /// Processors per node on the traced machine.
    pub cores_per_node: u32,
    /// Per-node footprint (MiB) when the trace carries no memory fields.
    pub default_mem_per_node: u64,
    /// Intensity is drawn deterministically per job id from this range.
    pub intensity_range: (f64, f64),
    /// Seed for the intensity derivation (so two parses agree).
    pub intensity_seed: u64,
    /// Keep jobs whose status is failed/cancelled (they still consumed
    /// resources in the original system).
    pub include_failed: bool,
}

impl Default for SwfConfig {
    fn default() -> Self {
        SwfConfig {
            cores_per_node: 1,
            default_mem_per_node: 1024,
            intensity_range: (0.2, 0.8),
            intensity_seed: 0x5u64,
            include_failed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobBuilder;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Test Machine
; MaxNodes: 64
  1   0  10  3600  128  -1  2097152  128  7200  -1  1  3  1  1  1  1 -1 -1
  2  60  -1  1800   64  -1  -1        64  3600  1048576  1  4  1  1  1  1 -1 -1
  3 120  -1    -1   64  -1  -1        64  3600  -1  1  4  1  1  1  1 -1 -1
  4 180  -1   900   -1  -1  -1        32  1800  -1  0  5  1  1  1  1 -1 -1
";

    #[test]
    fn parse_sample_trace() {
        let cfg = SwfConfig {
            cores_per_node: 64,
            ..SwfConfig::default()
        };
        let trace = parse_str(SAMPLE, &cfg).unwrap();
        // Job 3 has no runtime -> skipped. Job 4 failed -> skipped by default.
        assert_eq!(trace.workload.len(), 2);
        assert_eq!(trace.skipped, 2);
        assert_eq!(
            trace.header.get("Computer").map(String::as_str),
            Some("Test Machine")
        );

        let j1 = &trace.workload.jobs()[0];
        assert_eq!(j1.id.0, 1);
        assert_eq!(j1.nodes, 2, "128 procs / 64 cores");
        assert_eq!(j1.runtime.as_secs(), 3600);
        assert_eq!(j1.walltime.as_secs(), 7200);
        // 2 GiB/proc × 64 procs/node = 128 GiB/node = 131072 MiB
        assert_eq!(j1.mem_per_node, 131072);
        assert_eq!(j1.user, 3);

        let j2 = &trace.workload.jobs()[1];
        assert_eq!(j2.nodes, 1);
        // requested memory fallback: 1 GiB/proc × 64 = 64 GiB/node
        assert_eq!(j2.mem_per_node, 65536);
    }

    #[test]
    fn include_failed_keeps_job4() {
        let cfg = SwfConfig {
            cores_per_node: 64,
            include_failed: true,
            ..SwfConfig::default()
        };
        let trace = parse_str(SAMPLE, &cfg).unwrap();
        assert_eq!(trace.workload.len(), 3);
    }

    #[test]
    fn intensity_is_deterministic_and_in_range() {
        let cfg = SwfConfig {
            cores_per_node: 64,
            intensity_range: (0.3, 0.6),
            ..SwfConfig::default()
        };
        let a = parse_str(SAMPLE, &cfg).unwrap();
        let b = parse_str(SAMPLE, &cfg).unwrap();
        for (x, y) in a.workload.iter().zip(b.workload.iter()) {
            assert_eq!(x.intensity, y.intensity);
            assert!((0.3..=0.6).contains(&x.intensity));
        }
    }

    #[test]
    fn roundtrip_write_parse() {
        let jobs = vec![
            JobBuilder::new(1)
                .arrival_secs(100)
                .nodes(4)
                .runtime_secs(500, 1000)
                .mem_per_node(2048)
                .user(7)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(200)
                .nodes(1)
                .runtime_secs(50, 100)
                .mem_per_node(512)
                .user(8)
                .build(),
        ];
        let w = crate::Workload::from_jobs(jobs);
        let cfg = SwfConfig {
            cores_per_node: 32,
            ..SwfConfig::default()
        };
        let text = write_string(&w, &cfg);
        let back = parse_str(&text, &cfg).unwrap();
        assert_eq!(back.workload.len(), 2);
        for (orig, parsed) in w.iter().zip(back.workload.iter()) {
            assert_eq!(orig.id, parsed.id);
            assert_eq!(orig.arrival, parsed.arrival);
            assert_eq!(orig.nodes, parsed.nodes);
            assert_eq!(orig.runtime, parsed.runtime);
            assert_eq!(orig.walltime, parsed.walltime);
            assert_eq!(orig.mem_per_node, parsed.mem_per_node);
            assert_eq!(orig.user, parsed.user);
        }
    }
}
