//! SWF parsing.

use super::SwfConfig;
use crate::job::{Job, JobId};
use crate::workload_set::Workload;
use dmhpc_des::rng::SplitMix64;
use dmhpc_des::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::io::BufRead;

/// A parsed SWF trace: the usable jobs plus header metadata and a count of
/// lines that were skipped (malformed, zero-runtime, filtered status).
#[derive(Debug, Clone)]
pub struct SwfTrace {
    /// Jobs in arrival order.
    pub workload: Workload,
    /// `; Key: value` header entries.
    pub header: BTreeMap<String, String>,
    /// Data lines that did not become jobs.
    pub skipped: usize,
}

/// Parse SWF text.
pub fn parse_str(text: &str, cfg: &SwfConfig) -> Result<SwfTrace, String> {
    parse_lines(text.lines().map(|l| Ok(l.to_owned())), cfg)
}

/// Parse SWF from any buffered reader (streams multi-GB archive traces
/// without loading them whole).
pub fn parse_reader<R: BufRead>(reader: R, cfg: &SwfConfig) -> Result<SwfTrace, String> {
    parse_lines(
        reader
            .lines()
            .map(|r| r.map_err(|e| format!("I/O error reading SWF: {e}"))),
        cfg,
    )
}

fn parse_lines<I>(lines: I, cfg: &SwfConfig) -> Result<SwfTrace, String>
where
    I: Iterator<Item = Result<String, String>>,
{
    assert!(cfg.cores_per_node >= 1, "cores_per_node must be >= 1");
    let mut header = BTreeMap::new();
    let mut jobs = Vec::new();
    let mut skipped = 0usize;

    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(';') {
            if let Some((k, v)) = rest.split_once(':') {
                header.insert(k.trim().to_owned(), v.trim().to_owned());
            }
            continue;
        }
        match parse_data_line(line, cfg) {
            Ok(Some(job)) => jobs.push(job),
            Ok(None) => skipped += 1,
            Err(e) => return Err(format!("SWF line {}: {e}", lineno + 1)),
        }
    }
    Ok(SwfTrace {
        workload: Workload::from_jobs(jobs),
        header,
        skipped,
    })
}

/// Field accessor: SWF uses -1 for "missing".
fn field(fields: &[i64], idx: usize) -> Option<i64> {
    fields.get(idx).copied().filter(|&v| v >= 0)
}

fn parse_data_line(line: &str, cfg: &SwfConfig) -> Result<Option<Job>, String> {
    let fields: Vec<i64> = line
        .split_ascii_whitespace()
        .map(|tok| {
            tok.parse::<i64>()
                .map_err(|_| format!("non-integer field {tok:?}"))
        })
        .collect::<Result<_, _>>()?;
    if fields.len() < 11 {
        return Err(format!("expected >= 11 fields, got {}", fields.len()));
    }

    let job_number = field(&fields, 0).ok_or("missing job number")?;
    let submit = field(&fields, 1).ok_or("missing submit time")?;

    // Runtime is mandatory for simulation; jobs without one are metadata-only.
    let Some(runtime_s) = field(&fields, 3).filter(|&r| r > 0) else {
        return Ok(None);
    };

    // Status filter: 1 = completed. Everything else is kept only on request.
    let status = field(&fields, 10).unwrap_or(1);
    if status != 1 && !cfg.include_failed {
        return Ok(None);
    }

    // Processors: prefer the request, fall back to the allocation.
    let procs = field(&fields, 7)
        .filter(|&p| p > 0)
        .or_else(|| field(&fields, 4).filter(|&p| p > 0));
    let Some(procs) = procs else {
        return Ok(None);
    };
    let nodes = (procs as u64).div_ceil(cfg.cores_per_node as u64).max(1) as u32;

    // Walltime: requested time, floored at the actual runtime (SWF traces
    // occasionally contain runtime > request after clock skew corrections).
    let walltime_s = field(&fields, 8)
        .filter(|&t| t > 0)
        .unwrap_or(runtime_s)
        .max(runtime_s);

    // Memory: KiB per processor; used (7th, idx 6) preferred over requested
    // (10th, idx 9).
    let mem_kib_per_proc = field(&fields, 6)
        .filter(|&m| m > 0)
        .or_else(|| field(&fields, 9).filter(|&m| m > 0));
    let mem_per_node = match mem_kib_per_proc {
        Some(kib) => {
            let per_node_kib = kib as u64 * cfg.cores_per_node as u64;
            (per_node_kib / 1024).max(1)
        }
        None => cfg.default_mem_per_node,
    };

    let user = field(&fields, 11).map(|u| u as u32).unwrap_or(0);

    // Deterministic pseudo-intensity from the job id: SWF has no such
    // column, and hashing keeps re-parses identical.
    let (lo, hi) = cfg.intensity_range;
    let hash = SplitMix64::mix(cfg.intensity_seed, job_number as u64);
    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
    let intensity = lo + (hi - lo) * unit;

    let job = Job {
        id: JobId(job_number as u64),
        user,
        arrival: SimTime::from_secs(submit as u64),
        nodes,
        walltime: SimDuration::from_secs(walltime_s as u64),
        runtime: SimDuration::from_secs(runtime_s as u64),
        mem_per_node,
        intensity,
        slo: None,
    };
    job.validate().map_err(|e| format!("invalid job: {e}"))?;
    Ok(Some(job))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_and_str_agree() {
        let text = "1 0 -1 100 4 -1 -1 4 200 -1 1 2 -1 -1 -1 -1 -1 -1\n";
        let cfg = SwfConfig::default();
        let a = parse_str(text, &cfg).unwrap();
        let b = parse_reader(std::io::Cursor::new(text.as_bytes()), &cfg).unwrap();
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.workload.len(), 1);
        assert_eq!(a.workload.jobs()[0].nodes, 4);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = parse_str("1 0 abc 100 4\n", &SwfConfig::default()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("abc"), "{err}");
    }

    #[test]
    fn short_line_is_an_error() {
        let err = parse_str("1 0 100\n", &SwfConfig::default()).unwrap_err();
        assert!(err.contains(">= 11 fields"), "{err}");
    }

    #[test]
    fn zero_runtime_skipped_not_error() {
        let t = parse_str(
            "1 0 -1 0 4 -1 -1 4 200 -1 1 2 -1 -1 -1 -1 -1 -1\n",
            &SwfConfig::default(),
        )
        .unwrap();
        assert_eq!(t.workload.len(), 0);
        assert_eq!(t.skipped, 1);
    }

    #[test]
    fn allocated_procs_fallback() {
        // Requested procs (-1) missing -> use allocated (field 5).
        let t = parse_str(
            "1 0 -1 100 8 -1 -1 -1 200 -1 1 2 -1 -1 -1 -1 -1 -1\n",
            &SwfConfig {
                cores_per_node: 4,
                ..SwfConfig::default()
            },
        )
        .unwrap();
        assert_eq!(t.workload.jobs()[0].nodes, 2);
    }

    #[test]
    fn walltime_floored_at_runtime() {
        let t = parse_str(
            "1 0 -1 500 1 -1 -1 1 200 -1 1 2 -1 -1 -1 -1 -1 -1\n",
            &SwfConfig::default(),
        )
        .unwrap();
        assert_eq!(t.workload.jobs()[0].walltime.as_secs(), 500);
    }

    #[test]
    fn default_memory_when_absent() {
        let cfg = SwfConfig {
            default_mem_per_node: 4096,
            ..SwfConfig::default()
        };
        let t = parse_str("1 0 -1 100 1 -1 -1 1 200 -1 1 2 -1 -1 -1 -1 -1 -1\n", &cfg).unwrap();
        assert_eq!(t.workload.jobs()[0].mem_per_node, 4096);
    }

    #[test]
    fn header_without_colon_ignored() {
        let t = parse_str("; just a comment\n; Version: 2.2\n", &SwfConfig::default()).unwrap();
        assert_eq!(t.header.len(), 1);
        assert_eq!(t.header.get("Version").map(String::as_str), Some("2.2"));
    }
}
