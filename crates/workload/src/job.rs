//! The job model.

use crate::slo::Slo;
use dmhpc_des::time::{SimDuration, SimTime};
use std::fmt;

/// Unique job identifier. Also used as the platform lease id, so `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The raw id, for use as a platform lease key.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One batch job as submitted.
///
/// `nodes` and `mem_per_node` describe the job's *natural* shape: the node
/// count the user asked for and the peak per-node footprint at that count.
/// The total footprint `nodes × mem_per_node` is treated as invariant — if a
/// policy runs the job on more nodes (memory-driven inflation on a
/// conventional cluster), the per-node demand shrinks correspondingly via
/// [`mem_per_node_at`](Job::mem_per_node_at).
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique id; also the platform lease id while running.
    pub id: JobId,
    /// Submitting user (dense index, not a uid).
    pub user: u32,
    /// Submission time.
    pub arrival: SimTime,
    /// Requested node count (≥ 1).
    pub nodes: u32,
    /// User-provided walltime limit: the scheduler plans with this and kills
    /// the job when it expires.
    pub walltime: SimDuration,
    /// Actual runtime on all-local memory ("base" runtime, undilated).
    pub runtime: SimDuration,
    /// Peak memory per node at the requested node count, MiB.
    pub mem_per_node: u64,
    /// Memory-access intensity in `[0, 1]`: how much of the far-memory
    /// penalty this job feels. 0 = compute-bound, 1 = fully memory-bound.
    pub intensity: f64,
    /// Optional service-level objective (a wait budget). `None` means the
    /// job is unconstrained; SLO-free workloads hash and serialize exactly
    /// as they did before the field existed.
    pub slo: Option<Slo>,
}

impl Job {
    /// Total memory footprint across all nodes, MiB.
    pub fn total_mem(&self) -> u64 {
        self.mem_per_node * self.nodes as u64
    }

    /// Per-node footprint if the job ran on `k` nodes (total preserved,
    /// rounded up). `k` must be ≥ 1.
    pub fn mem_per_node_at(&self, k: u32) -> u64 {
        assert!(k >= 1, "node count must be >= 1");
        self.total_mem().div_ceil(k as u64)
    }

    /// Node-seconds of the request (nodes × walltime) — what the scheduler
    /// reserves.
    pub fn requested_node_seconds(&self) -> f64 {
        self.nodes as f64 * self.walltime.as_secs_f64()
    }

    /// Node-seconds actually consumed at base runtime.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.runtime.as_secs_f64()
    }

    /// User estimate accuracy: `runtime / walltime`, in `[0, ∞)`; values
    /// above 1 mean the job would be killed by its limit.
    pub fn estimate_accuracy(&self) -> f64 {
        self.runtime.ratio(self.walltime)
    }

    /// Validate internal consistency; the builder and parsers call this.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err(format!("{}: zero nodes", self.id));
        }
        if self.walltime.is_zero() {
            return Err(format!("{}: zero walltime", self.id));
        }
        if self.runtime.is_zero() {
            return Err(format!("{}: zero runtime", self.id));
        }
        if !(0.0..=1.0).contains(&self.intensity) {
            return Err(format!(
                "{}: intensity {} outside [0,1]",
                self.id, self.intensity
            ));
        }
        if self.mem_per_node == 0 {
            return Err(format!("{}: zero memory", self.id));
        }
        if let Some(slo) = &self.slo {
            slo.validate().map_err(|e| format!("{}: {e}", self.id))?;
        }
        Ok(())
    }
}

/// Fluent constructor for [`Job`], with sane defaults for the fields tests
/// rarely care about.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    /// Start building job `id`; defaults: user 0, arrival 0, 1 node, 1 h
    /// walltime, 30 min runtime, 1 GiB per node, intensity 0.5.
    pub fn new(id: u64) -> Self {
        JobBuilder {
            job: Job {
                id: JobId(id),
                user: 0,
                arrival: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(1),
                runtime: SimDuration::from_mins(30),
                mem_per_node: 1024,
                intensity: 0.5,
                slo: None,
            },
        }
    }

    /// Set the submitting user.
    pub fn user(mut self, user: u32) -> Self {
        self.job.user = user;
        self
    }

    /// Set the arrival time.
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.job.arrival = at;
        self
    }

    /// Set the arrival time in seconds.
    pub fn arrival_secs(mut self, secs: u64) -> Self {
        self.job.arrival = SimTime::from_secs(secs);
        self
    }

    /// Set the requested node count.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.job.nodes = nodes;
        self
    }

    /// Set the walltime limit.
    pub fn walltime(mut self, walltime: SimDuration) -> Self {
        self.job.walltime = walltime;
        self
    }

    /// Set the actual base runtime.
    pub fn runtime(mut self, runtime: SimDuration) -> Self {
        self.job.runtime = runtime;
        self
    }

    /// Set both runtime and walltime in seconds (walltime ≥ runtime is the
    /// caller's choice, not enforced).
    pub fn runtime_secs(mut self, runtime: u64, walltime: u64) -> Self {
        self.job.runtime = SimDuration::from_secs(runtime);
        self.job.walltime = SimDuration::from_secs(walltime);
        self
    }

    /// Set the per-node memory footprint in MiB.
    pub fn mem_per_node(mut self, mib: u64) -> Self {
        self.job.mem_per_node = mib;
        self
    }

    /// Set the memory intensity.
    pub fn intensity(mut self, intensity: f64) -> Self {
        self.job.intensity = intensity;
        self
    }

    /// Attach a service-level objective.
    pub fn slo(mut self, slo: Slo) -> Self {
        self.job.slo = Some(slo);
        self
    }

    /// Finish; panics if the job is inconsistent (construction-time bug).
    pub fn build(self) -> Job {
        self.job
            .validate()
            // lint: allow(panic) — documented panicking builder contract; invalid field combinations are caller bugs
            .expect("JobBuilder produced invalid job");
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_valid() {
        let j = JobBuilder::new(1).build();
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.nodes, 1);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn total_and_inflated_memory() {
        let j = JobBuilder::new(2).nodes(4).mem_per_node(100).build();
        assert_eq!(j.total_mem(), 400);
        assert_eq!(j.mem_per_node_at(4), 100);
        assert_eq!(j.mem_per_node_at(8), 50);
        assert_eq!(j.mem_per_node_at(3), 134); // ceil(400/3)
        assert_eq!(j.mem_per_node_at(1), 400);
    }

    #[test]
    fn node_seconds() {
        let j = JobBuilder::new(3).nodes(10).runtime_secs(600, 3600).build();
        assert!((j.node_seconds() - 6000.0).abs() < 1e-9);
        assert!((j.requested_node_seconds() - 36000.0).abs() < 1e-9);
        assert!((j.estimate_accuracy() - 600.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut j = JobBuilder::new(4).build();
        j.nodes = 0;
        assert!(j.validate().is_err());
        let mut j = JobBuilder::new(5).build();
        j.intensity = 1.5;
        assert!(j.validate().is_err());
        let mut j = JobBuilder::new(6).build();
        j.mem_per_node = 0;
        assert!(j.validate().is_err());
        let mut j = JobBuilder::new(7).build();
        j.slo = Some(Slo::Deadline { deadline_s: -5.0 });
        assert!(j.validate().is_err());
    }

    #[test]
    fn slo_attaches_via_builder() {
        let j = JobBuilder::new(8)
            .slo(Slo::BudgetFactor { factor: 2.0 })
            .build();
        assert_eq!(j.slo, Some(Slo::BudgetFactor { factor: 2.0 }));
        assert_eq!(JobBuilder::new(9).build().slo, None);
    }

    #[test]
    #[should_panic(expected = "invalid job")]
    fn builder_panics_on_invalid() {
        JobBuilder::new(7).intensity(2.0).build();
    }

    #[test]
    fn display_id() {
        assert_eq!(JobId(42).to_string(), "j42");
        assert_eq!(JobId(42).as_u64(), 42);
    }
}
