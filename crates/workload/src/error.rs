//! Typed validation errors for workload models.
//!
//! Every component model of a [`crate::SyntheticSpec`] validates its
//! parameters before sampling; the failures surface as one structured
//! [`WorkloadError`] instead of bare strings, so callers (notably the
//! simulator's `SimError`) can carry them without loss.

use std::fmt;

/// A workload model rejected its parameters.
///
/// `model` names the component that failed (`"spec"`, `"sizes"`,
/// `"runtime"`, `"walltime"`, `"memory"`, `"intensity"`), `reason` says
/// why. The `dmhpc-sim` crate converts this into its `SimError` enum, so
/// workload validation follows the same fallible-construction convention
/// as cluster shapes and slowdown models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// Which component model rejected its parameters.
    pub model: &'static str,
    /// What was wrong, human-readable.
    pub reason: String,
}

impl WorkloadError {
    /// A validation failure of `model`.
    pub fn new(model: &'static str, reason: impl Into<String>) -> Self {
        WorkloadError {
            model,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload {} model: {}", self.model, self.reason)
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_model_and_reason() {
        let e = WorkloadError::new("sizes", "max_nodes must be >= 1");
        assert_eq!(
            e.to_string(),
            "workload sizes model: max_nodes must be >= 1"
        );
        assert_eq!(e, e.clone());
    }
}
