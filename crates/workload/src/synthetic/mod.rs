//! Synthetic workload generation.
//!
//! [`SyntheticSpec`] composes the component models (arrivals, sizes,
//! runtimes, walltime requests, memory, intensity, user population) and
//! generates a reproducible [`Workload`]: every component draws from its own
//! forked PCG64 stream, so changing one model never perturbs the samples of
//! another, and a `(spec, seed)` pair is a complete experiment description.
//!
//! [`SystemPreset`] packages three calibrations used throughout the
//! reproduction (see `DESIGN.md` §5 for why synthetic stands in for
//! production traces).

mod arrivals;
mod memory;
mod runtime;
mod sizes;

pub use arrivals::ArrivalModel;
pub use memory::{IntensityModel, MemoryModel};
pub use runtime::{round_up_to_bucket, RuntimeModel, WalltimeModel, WALLTIME_BUCKETS};
pub use sizes::SizeModel;

use crate::error::WorkloadError;
use crate::job::{Job, JobId};
use crate::slo::SloModel;
use crate::workload_set::Workload;
use dmhpc_des::rng::dist::Zipf;
use dmhpc_des::rng::Pcg64;

/// A complete synthetic-workload description.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// Size of the user population.
    pub users: usize,
    /// Zipf exponent of user submission popularity (0 = uniform).
    pub user_zipf_s: f64,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Node-count model.
    pub sizes: SizeModel,
    /// Base-runtime model.
    pub runtime: RuntimeModel,
    /// Walltime-request model.
    pub walltime: WalltimeModel,
    /// Per-node memory model.
    pub memory: MemoryModel,
    /// Memory-intensity model.
    pub intensity: IntensityModel,
    /// Optional SLO stamping model. `None` (the presets' default) leaves
    /// jobs unconstrained and keeps generation bit-identical to pre-SLO
    /// output; `Some` stamps every job from its own forked stream.
    pub slo: Option<SloModel>,
}

impl SyntheticSpec {
    /// Validate every component model. Failures are typed
    /// ([`WorkloadError`]) and name the component that rejected its
    /// parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.n_jobs == 0 {
            return Err(WorkloadError::new("spec", "n_jobs must be positive"));
        }
        if self.users == 0 {
            return Err(WorkloadError::new("spec", "users must be positive"));
        }
        self.arrivals.validate()?;
        self.sizes.validate()?;
        self.runtime.validate()?;
        self.walltime.validate()?;
        self.memory.validate()?;
        self.intensity.validate()?;
        if let Some(slo) = &self.slo {
            slo.validate()?;
        }
        Ok(())
    }

    /// Generate the workload for `seed`. Deterministic: the same
    /// `(spec, seed)` always yields the identical job list.
    pub fn generate(&self, seed: u64) -> Workload {
        // lint: allow(panic) — documented panicking contract; validate() is the fallible check
        self.validate().expect("invalid SyntheticSpec");
        let root = Pcg64::new(seed);
        // Independent streams per component: stream labels are stable ABI.
        let mut r_arrival = root.fork(1);
        let mut r_size = root.fork(2);
        let mut r_runtime = root.fork(3);
        let mut r_walltime = root.fork(4);
        let mut r_memory = root.fork(5);
        let mut r_intensity = root.fork(6);
        let mut r_user = root.fork(7);
        let mut r_slo = root.fork(8);

        let arrivals = self.arrivals.generate(&mut r_arrival, self.n_jobs);
        let user_dist = Zipf::new(self.users, self.user_zipf_s);

        let mut jobs = Vec::with_capacity(self.n_jobs);
        for (i, &arrival) in arrivals.iter().enumerate() {
            let nodes = self.sizes.sample(&mut r_size);
            let runtime = self.runtime.sample(&mut r_runtime);
            let walltime = self.walltime.sample(&mut r_walltime, runtime);
            let mem_per_node = self.memory.sample(&mut r_memory);
            let mem_frac = mem_per_node as f64 / self.memory.node_mem_mib as f64;
            let intensity = self.intensity.sample(&mut r_intensity, mem_frac);
            let user = user_dist.sample_index(&mut r_user) as u32;
            let slo = self.slo.as_ref().map(|m| m.sample(&mut r_slo));
            jobs.push(Job {
                id: JobId(i as u64),
                user,
                arrival,
                nodes,
                walltime,
                runtime,
                mem_per_node,
                intensity,
                slo,
            });
        }
        Workload::from_jobs(jobs)
    }
}

/// Pre-calibrated system models used by the reproduction experiments.
///
/// Each preset pairs a machine shape (consumed by `dmhpc-platform` builders
/// in the `sim` crate) with a workload calibration whose memory model is
/// expressed relative to that machine's node DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemPreset {
    /// Mid-size capacity system: 256 nodes × 64 cores × 256 GiB. The
    /// reproduction's base configuration.
    MidCluster,
    /// Capability system: 1024 nodes × 128 cores × 512 GiB, larger jobs,
    /// lighter relative memory pressure.
    Capability,
    /// Throughput system: 128 nodes × 32 cores × 192 GiB, small short jobs,
    /// heavier data-intensive memory tail.
    HighThroughput,
}

impl SystemPreset {
    /// All presets, for sweep harnesses.
    pub const ALL: [SystemPreset; 3] = [
        SystemPreset::MidCluster,
        SystemPreset::Capability,
        SystemPreset::HighThroughput,
    ];

    /// Stable name used in reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            SystemPreset::MidCluster => "mid-256",
            SystemPreset::Capability => "cap-1024",
            SystemPreset::HighThroughput => "htc-128",
        }
    }

    /// Machine shape: `(racks, nodes_per_rack, cores, node_mem_mib)`.
    pub fn machine(&self) -> (u32, u32, u32, u64) {
        match self {
            SystemPreset::MidCluster => (8, 32, 64, 256 * 1024),
            SystemPreset::Capability => (16, 64, 128, 512 * 1024),
            SystemPreset::HighThroughput => (4, 32, 32, 192 * 1024),
        }
    }

    /// Workload calibration producing `n_jobs` jobs. Arrival rates are set
    /// so the offered load is roughly 0.8–0.9 on the preset's machine;
    /// experiments that sweep load rescale from there
    /// (`transform::rescale_load`).
    pub fn synthetic_spec(&self, n_jobs: usize) -> SyntheticSpec {
        let (racks, npr, _, node_mem) = self.machine();
        let total_nodes = (racks * npr) as f64;
        match self {
            SystemPreset::MidCluster => SyntheticSpec {
                n_jobs,
                users: 200,
                user_zipf_s: 1.1,
                arrivals: ArrivalModel::daily(
                    // mean job ≈ 14.4 nodes × ~4200 s ⇒ interarrival for ~0.85 load
                    14.4 * 4200.0 / (total_nodes * 0.85),
                    3.0,
                ),
                sizes: SizeModel {
                    max_nodes: 64,
                    serial_fraction: 0.25,
                    power_of_two_bias: 0.75,
                    log_mean: 2.2,
                    log_std: 1.2,
                },
                runtime: RuntimeModel {
                    p_short: 0.65,
                    short: (2.0, 800.0),
                    long: (2.0, 6000.0),
                    min_secs: 60.0,
                    max_secs: 172_800.0,
                },
                walltime: WalltimeModel {
                    overestimate_mean_excess: 1.2,
                    round_to_buckets: true,
                    underestimate_fraction: 0.0,
                    max_secs: 172_800,
                },
                memory: MemoryModel {
                    node_mem_mib: node_mem,
                    light_median_frac: 0.15,
                    light_sigma: 0.8,
                    heavy_fraction: 0.12,
                    heavy_median_frac: 1.3,
                    heavy_sigma: 0.5,
                    cap_frac: 4.0,
                    min_mib: 256,
                },
                intensity: IntensityModel {
                    base: 0.25,
                    mem_coupling: 0.55,
                    noise: 0.1,
                },
                slo: None,
            },
            SystemPreset::Capability => SyntheticSpec {
                n_jobs,
                users: 400,
                user_zipf_s: 1.2,
                arrivals: ArrivalModel::daily(58.0 * 7000.0 / (total_nodes * 0.85), 3.0),
                sizes: SizeModel {
                    max_nodes: 512,
                    serial_fraction: 0.08,
                    power_of_two_bias: 0.85,
                    log_mean: 3.6,
                    log_std: 1.4,
                },
                runtime: RuntimeModel {
                    p_short: 0.5,
                    short: (2.0, 1500.0),
                    long: (2.5, 8000.0),
                    min_secs: 120.0,
                    max_secs: 172_800.0,
                },
                walltime: WalltimeModel {
                    overestimate_mean_excess: 1.0,
                    round_to_buckets: true,
                    underestimate_fraction: 0.0,
                    max_secs: 172_800,
                },
                memory: MemoryModel {
                    node_mem_mib: node_mem,
                    light_median_frac: 0.12,
                    light_sigma: 0.7,
                    heavy_fraction: 0.08,
                    heavy_median_frac: 1.15,
                    heavy_sigma: 0.45,
                    cap_frac: 3.0,
                    min_mib: 512,
                },
                intensity: IntensityModel {
                    base: 0.2,
                    mem_coupling: 0.5,
                    noise: 0.1,
                },
                slo: None,
            },
            SystemPreset::HighThroughput => SyntheticSpec {
                n_jobs,
                users: 120,
                user_zipf_s: 1.0,
                arrivals: ArrivalModel::daily(3.2 * 2500.0 / (total_nodes * 0.85), 2.5),
                sizes: SizeModel {
                    max_nodes: 16,
                    serial_fraction: 0.55,
                    power_of_two_bias: 0.6,
                    log_mean: 1.0,
                    log_std: 0.9,
                },
                runtime: RuntimeModel {
                    p_short: 0.8,
                    short: (1.5, 900.0),
                    long: (2.0, 4000.0),
                    min_secs: 30.0,
                    max_secs: 86_400.0,
                },
                walltime: WalltimeModel {
                    overestimate_mean_excess: 1.6,
                    round_to_buckets: true,
                    underestimate_fraction: 0.0,
                    max_secs: 86_400,
                },
                memory: MemoryModel {
                    node_mem_mib: node_mem,
                    light_median_frac: 0.2,
                    light_sigma: 0.9,
                    heavy_fraction: 0.2,
                    heavy_median_frac: 1.5,
                    heavy_sigma: 0.6,
                    cap_frac: 6.0,
                    min_mib: 128,
                },
                intensity: IntensityModel {
                    base: 0.3,
                    mem_coupling: 0.6,
                    noise: 0.12,
                },
                slo: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SystemPreset::MidCluster.synthetic_spec(500);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
        let c = spec.generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn generates_requested_count_with_valid_jobs() {
        for preset in SystemPreset::ALL {
            let spec = preset.synthetic_spec(1000);
            let w = spec.generate(1);
            assert_eq!(w.len(), 1000, "{}", preset.name());
            for j in w.iter() {
                j.validate().unwrap();
                assert!(j.nodes <= spec.sizes.max_nodes);
                assert!(j.walltime >= j.runtime, "no underestimates configured");
            }
        }
    }

    #[test]
    fn offered_load_in_target_band() {
        let preset = SystemPreset::MidCluster;
        let spec = preset.synthetic_spec(4000);
        let w = spec.generate(3);
        let (racks, npr, _, _) = preset.machine();
        let load = w.offered_load(racks * npr);
        // Calibration is approximate; experiments rescale. Just require the
        // right order of magnitude.
        assert!(
            load > 0.4 && load < 1.6,
            "offered load {load} wildly off calibration"
        );
    }

    #[test]
    fn heavy_memory_class_present() {
        let spec = SystemPreset::MidCluster.synthetic_spec(5000);
        let w = spec.generate(11);
        let node_mem = spec.memory.node_mem_mib;
        let over = w.iter().filter(|j| j.mem_per_node > node_mem).count();
        let frac = over as f64 / w.len() as f64;
        assert!(frac > 0.04 && frac < 0.15, "over-node fraction {frac}");
    }

    #[test]
    fn changing_one_model_keeps_other_streams() {
        // Stream independence: a different memory model must not change
        // arrival times or node counts.
        let spec_a = SystemPreset::MidCluster.synthetic_spec(200);
        let mut spec_b = spec_a.clone();
        spec_b.memory.heavy_fraction = 0.5;
        let wa = spec_a.generate(9);
        let wb = spec_b.generate(9);
        for (a, b) in wa.iter().zip(wb.iter()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
        }
    }

    #[test]
    fn slo_stamping_is_seeded_and_stream_independent() {
        let spec_a = SystemPreset::MidCluster.synthetic_spec(300);
        let mut spec_b = spec_a.clone();
        spec_b.slo = Some(SloModel {
            factor_min: 0.5,
            factor_max: 2.0,
        });
        let wa = spec_a.generate(9);
        let wb = spec_b.generate(9);
        for (a, b) in wa.iter().zip(wb.iter()) {
            assert_eq!(a.slo, None);
            b.slo.expect("stamped").validate().unwrap();
            // The stamp draws from its own stream: all other fields match
            // the unstamped generation bit-for-bit.
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.mem_per_node, b.mem_per_node);
            assert_eq!(a.user, b.user);
        }
        assert_eq!(spec_b.generate(9), wb, "stamping is deterministic");
    }

    #[test]
    fn slo_model_is_validated() {
        let mut spec = SystemPreset::MidCluster.synthetic_spec(10);
        spec.slo = Some(SloModel {
            factor_min: -1.0,
            factor_max: 2.0,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn user_popularity_is_skewed() {
        let spec = SystemPreset::MidCluster.synthetic_spec(5000);
        let w = spec.generate(13);
        let mut counts = vec![0u32; spec.users];
        for j in w.iter() {
            counts[j.user as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts.iter().take(10).sum();
        assert!(
            top10 as f64 / 5000.0 > 0.2,
            "top-10 users should dominate submissions"
        );
    }

    #[test]
    fn preset_names_and_machines() {
        assert_eq!(SystemPreset::MidCluster.name(), "mid-256");
        let (racks, npr, cores, mem) = SystemPreset::MidCluster.machine();
        assert_eq!(racks * npr, 256);
        assert_eq!(cores, 64);
        assert_eq!(mem, 256 * 1024);
    }
}
