//! Job node-count model.

use crate::error::WorkloadError;
use dmhpc_des::rng::dist::{Distribution, Normal};
use dmhpc_des::rng::Pcg64;

/// Node-count model in the Lublin–Feitelson tradition: a serial-job point
/// mass, a lognormal body over parallel sizes, and a strong bias toward
/// powers of two (users think in powers of two; archive traces confirm it).
#[derive(Debug, Clone, Copy)]
pub struct SizeModel {
    /// Largest permitted request (jobs are clamped here).
    pub max_nodes: u32,
    /// Probability of a single-node job.
    pub serial_fraction: f64,
    /// Probability that a parallel size is snapped to the nearest power of
    /// two.
    pub power_of_two_bias: f64,
    /// Mean of `ln(nodes)` for parallel jobs.
    pub log_mean: f64,
    /// Std of `ln(nodes)` for parallel jobs.
    pub log_std: f64,
}

impl SizeModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |reason: String| Err(WorkloadError::new("sizes", reason));
        if self.max_nodes < 1 {
            return err("max_nodes must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return err(format!(
                "serial_fraction {} outside [0,1]",
                self.serial_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.power_of_two_bias) {
            return err(format!(
                "power_of_two_bias {} outside [0,1]",
                self.power_of_two_bias
            ));
        }
        if self.log_std.is_nan() || self.log_std <= 0.0 {
            return err("log_std must be > 0".into());
        }
        Ok(())
    }

    /// Draw one node count in `[1, max_nodes]`.
    pub fn sample(&self, rng: &mut Pcg64) -> u32 {
        if self.max_nodes == 1 || rng.chance(self.serial_fraction) {
            return 1;
        }
        let normal = Normal::new(self.log_mean, self.log_std);
        let raw = normal.sample(rng).exp();
        let mut nodes = raw.round().clamp(2.0, self.max_nodes as f64) as u32;
        if rng.chance(self.power_of_two_bias) {
            nodes = nearest_power_of_two(nodes).min(prev_power_of_two(self.max_nodes));
        }
        nodes.clamp(1, self.max_nodes)
    }
}

/// Nearest power of two to `n` (ties round up). `n >= 1`.
fn nearest_power_of_two(n: u32) -> u32 {
    debug_assert!(n >= 1);
    let lower = prev_power_of_two(n);
    let upper = lower.saturating_mul(2);
    if (n - lower) < (upper - n) {
        lower
    } else {
        upper
    }
}

/// Largest power of two ≤ `n`. `n >= 1`.
fn prev_power_of_two(n: u32) -> u32 {
    debug_assert!(n >= 1);
    1u32 << (31 - n.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SizeModel {
        SizeModel {
            max_nodes: 256,
            serial_fraction: 0.25,
            power_of_two_bias: 0.75,
            log_mean: 2.5,
            log_std: 1.3,
        }
    }

    #[test]
    fn power_helpers() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(5), 4);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(nearest_power_of_two(5), 4);
        assert_eq!(nearest_power_of_two(6), 8); // tie rounds up
        assert_eq!(nearest_power_of_two(7), 8);
        assert_eq!(nearest_power_of_two(3), 4);
    }

    #[test]
    fn respects_bounds() {
        let m = model();
        let mut rng = Pcg64::new(41);
        for _ in 0..50_000 {
            let n = m.sample(&mut rng);
            assert!((1..=256).contains(&n));
        }
    }

    #[test]
    fn serial_fraction_observed() {
        let m = model();
        let mut rng = Pcg64::new(42);
        let n = 100_000;
        let serial = (0..n).filter(|_| m.sample(&mut rng) == 1).count();
        let frac = serial as f64 / n as f64;
        // Serial point mass plus a little lognormal mass that lands on 1.
        assert!(
            frac > 0.24 && frac < 0.35,
            "serial fraction {frac} out of expected band"
        );
    }

    #[test]
    fn power_of_two_dominates() {
        let m = model();
        let mut rng = Pcg64::new(43);
        let n = 100_000;
        let pow2 = (0..n)
            .map(|_| m.sample(&mut rng))
            .filter(|&s| s.is_power_of_two())
            .count();
        let frac = pow2 as f64 / n as f64;
        assert!(frac > 0.7, "power-of-two fraction {frac} too low");
    }

    #[test]
    fn max_nodes_one_degenerates() {
        let m = SizeModel {
            max_nodes: 1,
            ..model()
        };
        let mut rng = Pcg64::new(44);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 1);
        }
    }

    #[test]
    fn validation() {
        assert!(model().validate().is_ok());
        assert!(SizeModel {
            serial_fraction: 1.5,
            ..model()
        }
        .validate()
        .is_err());
        assert!(SizeModel {
            log_std: 0.0,
            ..model()
        }
        .validate()
        .is_err());
        assert!(SizeModel {
            max_nodes: 0,
            ..model()
        }
        .validate()
        .is_err());
    }
}
