//! Job arrival processes.

use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::SimTime;

const SECS_PER_DAY: f64 = 86_400.0;

/// Arrival process: homogeneous Poisson, optionally modulated by the daily
/// submission cycle every production trace shows (quiet nights, busy
/// afternoons). The modulated process is sampled exactly with Lewis–Shedler
/// thinning against the peak rate.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalModel {
    /// Mean seconds between submissions (before modulation; the cycle
    /// preserves this mean).
    pub mean_interarrival_secs: f64,
    /// Enable the sinusoidal daily cycle.
    pub daily_cycle: bool,
    /// Ratio of peak rate to trough rate (≥ 1); 3 is typical of production
    /// systems. Ignored unless `daily_cycle`.
    pub peak_to_trough: f64,
}

impl ArrivalModel {
    /// A plain Poisson process with the given mean inter-arrival.
    pub fn poisson(mean_interarrival_secs: f64) -> Self {
        ArrivalModel {
            mean_interarrival_secs,
            daily_cycle: false,
            peak_to_trough: 1.0,
        }
    }

    /// A daily-cycle-modulated process.
    pub fn daily(mean_interarrival_secs: f64, peak_to_trough: f64) -> Self {
        ArrivalModel {
            mean_interarrival_secs,
            daily_cycle: true,
            peak_to_trough,
        }
    }

    /// Relative rate multiplier at time `t` (mean 1 over a day). Peak is at
    /// 15:00, matching the afternoon submission maximum in archive traces.
    pub fn rate_multiplier(&self, t_secs: f64) -> f64 {
        if !self.daily_cycle || self.peak_to_trough <= 1.0 {
            return 1.0;
        }
        let a = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0);
        let phase = 2.0 * std::f64::consts::PI * (t_secs / SECS_PER_DAY - 15.0 / 24.0);
        1.0 + a * phase.cos()
    }

    /// Generate `n` arrival instants starting from t=0.
    pub fn generate(&self, rng: &mut Pcg64, n: usize) -> Vec<SimTime> {
        assert!(
            self.mean_interarrival_secs > 0.0 && self.mean_interarrival_secs.is_finite(),
            "mean inter-arrival must be positive"
        );
        assert!(self.peak_to_trough >= 1.0, "peak_to_trough must be >= 1");
        let base_rate = 1.0 / self.mean_interarrival_secs;
        let a = if self.daily_cycle {
            (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)
        } else {
            0.0
        };
        let max_rate = base_rate * (1.0 + a);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        while out.len() < n {
            // Candidate from the dominating homogeneous process…
            t += -rng.next_f64_open().ln() / max_rate;
            // …thinned by the instantaneous relative rate.
            let keep = self.rate_multiplier(t) / (1.0 + a);
            if rng.next_f64() < keep {
                out.push(SimTime::from_secs_f64(t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival() {
        let m = ArrivalModel::poisson(100.0);
        let mut rng = Pcg64::new(31);
        let arr = m.generate(&mut rng, 20_000);
        assert_eq!(arr.len(), 20_000);
        let span = (arr.last().unwrap().as_secs_f64()) - arr[0].as_secs_f64();
        let mean = span / (arr.len() - 1) as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean inter-arrival {mean}");
        // Strictly increasing (ties virtually impossible at f64 precision,
        // but non-decreasing is the contract).
        for w in arr.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn daily_cycle_preserves_mean_rate() {
        let m = ArrivalModel::daily(60.0, 3.0);
        let mut rng = Pcg64::new(32);
        let n = 50_000;
        let arr = m.generate(&mut rng, n);
        let span = arr.last().unwrap().as_secs_f64();
        let mean = span / n as f64;
        assert!(
            (mean - 60.0).abs() < 3.0,
            "thinning must preserve the base rate, got mean {mean}"
        );
    }

    #[test]
    fn daily_cycle_concentrates_afternoons() {
        let m = ArrivalModel::daily(30.0, 4.0);
        let mut rng = Pcg64::new(33);
        let arr = m.generate(&mut rng, 100_000);
        let mut day = [0u32; 24];
        for t in &arr {
            day[(t.as_secs() % 86_400 / 3600) as usize] += 1;
        }
        let peak = day[15];
        let trough = day[3];
        let ratio = peak as f64 / trough.max(1) as f64;
        assert!(
            ratio > 2.0,
            "15:00 ({peak}) should see far more arrivals than 03:00 ({trough})"
        );
    }

    #[test]
    fn multiplier_mean_is_one() {
        let m = ArrivalModel::daily(10.0, 3.0);
        let mean: f64 = (0..86_400)
            .step_by(60)
            .map(|t| m.rate_multiplier(t as f64))
            .sum::<f64>()
            / 1440.0;
        assert!((mean - 1.0).abs() < 1e-6, "cycle mean {mean}");
    }

    #[test]
    fn no_cycle_multiplier_is_one() {
        let m = ArrivalModel::poisson(10.0);
        assert_eq!(m.rate_multiplier(12_345.0), 1.0);
    }
}
