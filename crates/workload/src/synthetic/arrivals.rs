//! Job arrival processes.

use crate::error::WorkloadError;
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::SimTime;

const SECS_PER_DAY: f64 = 86_400.0;

/// Arrival process: homogeneous Poisson, optionally modulated by the daily
/// submission cycle every production trace shows (quiet nights, busy
/// afternoons). The modulated process is sampled exactly with Lewis–Shedler
/// thinning against the peak rate.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalModel {
    /// Mean seconds between submissions (before modulation; the cycle
    /// preserves this mean).
    pub mean_interarrival_secs: f64,
    /// Enable the sinusoidal daily cycle.
    pub daily_cycle: bool,
    /// Ratio of peak rate to trough rate (≥ 1); 3 is typical of production
    /// systems. Ignored unless `daily_cycle`.
    pub peak_to_trough: f64,
}

impl ArrivalModel {
    /// A plain Poisson process with the given mean inter-arrival.
    pub fn poisson(mean_interarrival_secs: f64) -> Self {
        ArrivalModel {
            mean_interarrival_secs,
            daily_cycle: false,
            peak_to_trough: 1.0,
        }
    }

    /// A daily-cycle-modulated process.
    pub fn daily(mean_interarrival_secs: f64, peak_to_trough: f64) -> Self {
        ArrivalModel {
            mean_interarrival_secs,
            daily_cycle: true,
            peak_to_trough,
        }
    }

    /// Validate parameters; [`generate`](ArrivalModel::generate) and the
    /// streaming sources ([`crate::source`]) require this to pass.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.mean_interarrival_secs > 0.0 && self.mean_interarrival_secs.is_finite()) {
            return Err(WorkloadError::new(
                "arrivals",
                format!(
                    "mean inter-arrival must be positive and finite, got {}",
                    self.mean_interarrival_secs
                ),
            ));
        }
        if !(self.peak_to_trough >= 1.0 && self.peak_to_trough.is_finite()) {
            return Err(WorkloadError::new(
                "arrivals",
                format!(
                    "peak_to_trough must be >= 1 and finite, got {}",
                    self.peak_to_trough
                ),
            ));
        }
        Ok(())
    }

    /// Relative rate multiplier at time `t` (mean 1 over a day). Peak is at
    /// 15:00, matching the afternoon submission maximum in archive traces.
    pub fn rate_multiplier(&self, t_secs: f64) -> f64 {
        if !self.daily_cycle || self.peak_to_trough <= 1.0 {
            return 1.0;
        }
        let a = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0);
        let phase = 2.0 * std::f64::consts::PI * (t_secs / SECS_PER_DAY - 15.0 / 24.0);
        1.0 + a * phase.cos()
    }

    /// The next arrival instant strictly after `t_secs` (seconds), sampled
    /// by Lewis–Shedler thinning. Consumes exactly the RNG draws the batch
    /// [`generate`](ArrivalModel::generate) loop would, so a stream advanced
    /// from `t = 0` reproduces the batch arrival sequence bit for bit.
    ///
    /// Parameters must satisfy [`validate`](ArrivalModel::validate); invalid
    /// rates make this loop forever or return NaN.
    pub fn next_after(&self, rng: &mut Pcg64, mut t_secs: f64) -> f64 {
        let base_rate = 1.0 / self.mean_interarrival_secs;
        let a = if self.daily_cycle {
            (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)
        } else {
            0.0
        };
        let max_rate = base_rate * (1.0 + a);
        loop {
            // Candidate from the dominating homogeneous process…
            t_secs += -rng.next_f64_open().ln() / max_rate;
            // …thinned by the instantaneous relative rate.
            let keep = self.rate_multiplier(t_secs) / (1.0 + a);
            if rng.next_f64() < keep {
                return t_secs;
            }
        }
    }

    /// Generate `n` arrival instants starting from t=0.
    pub fn generate(&self, rng: &mut Pcg64, n: usize) -> Vec<SimTime> {
        // lint: allow(panic) — documented panicking contract mirroring SyntheticSpec::generate
        self.validate().expect("invalid ArrivalModel");
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        while out.len() < n {
            t = self.next_after(rng, t);
            out.push(SimTime::from_secs_f64(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival() {
        let m = ArrivalModel::poisson(100.0);
        let mut rng = Pcg64::new(31);
        let arr = m.generate(&mut rng, 20_000);
        assert_eq!(arr.len(), 20_000);
        let span = (arr.last().unwrap().as_secs_f64()) - arr[0].as_secs_f64();
        let mean = span / (arr.len() - 1) as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean inter-arrival {mean}");
        // Strictly increasing (ties virtually impossible at f64 precision,
        // but non-decreasing is the contract).
        for w in arr.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn daily_cycle_preserves_mean_rate() {
        let m = ArrivalModel::daily(60.0, 3.0);
        let mut rng = Pcg64::new(32);
        let n = 50_000;
        let arr = m.generate(&mut rng, n);
        let span = arr.last().unwrap().as_secs_f64();
        let mean = span / n as f64;
        assert!(
            (mean - 60.0).abs() < 3.0,
            "thinning must preserve the base rate, got mean {mean}"
        );
    }

    #[test]
    fn daily_cycle_concentrates_afternoons() {
        let m = ArrivalModel::daily(30.0, 4.0);
        let mut rng = Pcg64::new(33);
        let arr = m.generate(&mut rng, 100_000);
        let mut day = [0u32; 24];
        for t in &arr {
            day[(t.as_secs() % 86_400 / 3600) as usize] += 1;
        }
        let peak = day[15];
        let trough = day[3];
        let ratio = peak as f64 / trough.max(1) as f64;
        assert!(
            ratio > 2.0,
            "15:00 ({peak}) should see far more arrivals than 03:00 ({trough})"
        );
    }

    #[test]
    fn multiplier_mean_is_one() {
        let m = ArrivalModel::daily(10.0, 3.0);
        let mean: f64 = (0..86_400)
            .step_by(60)
            .map(|t| m.rate_multiplier(t as f64))
            .sum::<f64>()
            / 1440.0;
        assert!((mean - 1.0).abs() < 1e-6, "cycle mean {mean}");
    }

    #[test]
    fn validation_is_typed() {
        assert!(ArrivalModel::poisson(100.0).validate().is_ok());
        assert!(ArrivalModel::daily(60.0, 3.0).validate().is_ok());
        let err = ArrivalModel::poisson(-1.0).validate().unwrap_err();
        assert_eq!(err.model, "arrivals");
        assert!(err.reason.contains("positive"), "{err}");
        assert!(ArrivalModel::poisson(f64::NAN).validate().is_err());
        assert!(ArrivalModel::poisson(0.0).validate().is_err());
        let err = ArrivalModel::daily(10.0, 0.5).validate().unwrap_err();
        assert!(err.reason.contains("peak_to_trough"), "{err}");
    }

    #[test]
    fn next_after_streams_the_batch_sequence() {
        let m = ArrivalModel::daily(45.0, 3.0);
        let mut batch_rng = Pcg64::new(17);
        let batch = m.generate(&mut batch_rng, 500);
        let mut stream_rng = Pcg64::new(17);
        let mut t = 0.0f64;
        for expect in &batch {
            t = m.next_after(&mut stream_rng, t);
            assert_eq!(SimTime::from_secs_f64(t), *expect);
        }
    }

    #[test]
    fn no_cycle_multiplier_is_one() {
        let m = ArrivalModel::poisson(10.0);
        assert_eq!(m.rate_multiplier(12_345.0), 1.0);
    }
}
