//! Runtime and walltime-request models.

use crate::error::WorkloadError;
use dmhpc_des::rng::dist::{Distribution, Exponential, Gamma, HyperGamma};
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::SimDuration;

/// Actual-runtime model: the two-stage hyper-Gamma of Lublin & Feitelson,
/// which captures the short-job mass and the long tail that one Gamma
/// cannot. Samples are in seconds, clamped to `[min_secs, max_secs]`.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeModel {
    /// Mixture weight of the short-job Gamma.
    pub p_short: f64,
    /// Short-job Gamma `(shape, scale)`, seconds.
    pub short: (f64, f64),
    /// Long-job Gamma `(shape, scale)`, seconds.
    pub long: (f64, f64),
    /// Floor, seconds (batch systems rarely see sub-minute jobs).
    pub min_secs: f64,
    /// Ceiling, seconds (site maximum walltime).
    pub max_secs: f64,
}

impl RuntimeModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |reason: String| Err(WorkloadError::new("runtime", reason));
        if !(0.0..=1.0).contains(&self.p_short) {
            return err(format!("p_short {} outside [0,1]", self.p_short));
        }
        for (name, (shape, scale)) in [("short", self.short), ("long", self.long)] {
            if !(shape > 0.0 && scale > 0.0) {
                return err(format!("{name} Gamma requires positive shape/scale"));
            }
        }
        if !(self.min_secs > 0.0 && self.max_secs > self.min_secs) {
            return err("need 0 < min_secs < max_secs".into());
        }
        Ok(())
    }

    /// Draw one base runtime.
    pub fn sample(&self, rng: &mut Pcg64) -> SimDuration {
        let d = HyperGamma::new(
            self.p_short,
            Gamma::new(self.short.0, self.short.1),
            Gamma::new(self.long.0, self.long.1),
        );
        let secs = d.sample(rng).clamp(self.min_secs, self.max_secs);
        SimDuration::from_secs_f64(secs)
    }
}

/// Walltime-request model. Users overestimate, cluster their requests on
/// round values, and occasionally underestimate (those jobs get killed).
#[derive(Debug, Clone, Copy)]
pub struct WalltimeModel {
    /// Mean of the multiplicative overestimation factor minus one; the
    /// factor is `1 + Exp(mean = overestimate_mean_excess)`. Production
    /// accuracy studies put mean accuracy below 60%, i.e. excess ≳ 1.
    pub overestimate_mean_excess: f64,
    /// Snap requests up to the canonical site buckets (15 m … 48 h, then
    /// whole days).
    pub round_to_buckets: bool,
    /// Fraction of jobs whose request *under*-estimates the runtime
    /// (walltime < runtime ⇒ the scheduler kills them at the limit).
    pub underestimate_fraction: f64,
    /// Hard site maximum, seconds. Requests are capped here.
    pub max_secs: u64,
}

/// Canonical walltime buckets (seconds): 15 m, 30 m, 1 h, 2 h, 4 h, 6 h,
/// 8 h, 12 h, 24 h, 48 h.
pub const WALLTIME_BUCKETS: [u64; 10] = [
    900, 1800, 3600, 7200, 14_400, 21_600, 28_800, 43_200, 86_400, 172_800,
];

impl WalltimeModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |reason: String| Err(WorkloadError::new("walltime", reason));
        if self.overestimate_mean_excess.is_nan() || self.overestimate_mean_excess < 0.0 {
            return err("overestimate_mean_excess must be >= 0".into());
        }
        if !(0.0..=1.0).contains(&self.underestimate_fraction) {
            return err(format!(
                "underestimate_fraction {} outside [0,1]",
                self.underestimate_fraction
            ));
        }
        if self.max_secs == 0 {
            return err("max_secs must be positive".into());
        }
        Ok(())
    }

    /// Draw the user's walltime request for a job with the given base
    /// runtime.
    pub fn sample(&self, rng: &mut Pcg64, runtime: SimDuration) -> SimDuration {
        let run_secs = runtime.as_secs_f64();
        if self.underestimate_fraction > 0.0 && rng.chance(self.underestimate_fraction) {
            // Underestimate: request 50–95% of the true runtime, at least a
            // minute so the job is schedulable at all.
            let secs = (run_secs * rng.range_f64(0.5, 0.95)).max(60.0);
            return SimDuration::from_secs_f64(secs.min(self.max_secs as f64));
        }
        let factor = if self.overestimate_mean_excess > 0.0 {
            1.0 + Exponential::with_mean(self.overestimate_mean_excess).sample(rng)
        } else {
            1.0
        };
        let mut secs = (run_secs * factor).ceil() as u64;
        if self.round_to_buckets {
            secs = round_up_to_bucket(secs);
        }
        SimDuration::from_secs(secs.clamp(1, self.max_secs))
    }
}

/// The smallest canonical bucket ≥ `secs`; beyond 48 h, the next whole day.
pub fn round_up_to_bucket(secs: u64) -> u64 {
    for &b in &WALLTIME_BUCKETS {
        if secs <= b {
            return b;
        }
    }
    secs.div_ceil(86_400) * 86_400
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime_model() -> RuntimeModel {
        RuntimeModel {
            p_short: 0.7,
            short: (2.0, 600.0), // mean 20 min
            long: (2.0, 7200.0), // mean 4 h
            min_secs: 60.0,
            max_secs: 172_800.0,
        }
    }

    #[test]
    fn runtime_within_bounds_and_mixture_mean() {
        let m = runtime_model();
        m.validate().unwrap();
        let mut rng = Pcg64::new(51);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let r = m.sample(&mut rng).as_secs_f64();
            assert!((60.0..=172_800.0).contains(&r));
            sum += r;
        }
        let mean = sum / n as f64;
        // Unclamped mixture mean = 0.7·1200 + 0.3·14400 = 5160.
        assert!(
            (mean - 5160.0).abs() < 260.0,
            "mixture mean {mean} far from 5160"
        );
    }

    #[test]
    fn bucket_rounding() {
        assert_eq!(round_up_to_bucket(1), 900);
        assert_eq!(round_up_to_bucket(900), 900);
        assert_eq!(round_up_to_bucket(901), 1800);
        assert_eq!(round_up_to_bucket(4000), 7200);
        assert_eq!(round_up_to_bucket(100_000), 172_800);
        // Past the largest bucket: next whole day.
        assert_eq!(round_up_to_bucket(172_801), 3 * 86_400);
        assert_eq!(round_up_to_bucket(200_000), 3 * 86_400);
        assert_eq!(round_up_to_bucket(3 * 86_400 + 1), 4 * 86_400);
    }

    #[test]
    fn walltime_overestimates() {
        let m = WalltimeModel {
            overestimate_mean_excess: 1.5,
            round_to_buckets: true,
            underestimate_fraction: 0.0,
            max_secs: 172_800,
        };
        m.validate().unwrap();
        let mut rng = Pcg64::new(52);
        let runtime = SimDuration::from_secs(3000);
        for _ in 0..5000 {
            let w = m.sample(&mut rng, runtime);
            assert!(w >= runtime, "no underestimates configured");
            assert!(w.as_secs() <= 172_800);
            let s = w.as_secs();
            assert!(
                WALLTIME_BUCKETS.contains(&s) || s.is_multiple_of(86_400),
                "{s} not a bucket"
            );
        }
    }

    #[test]
    fn underestimates_happen_when_asked() {
        let m = WalltimeModel {
            overestimate_mean_excess: 1.0,
            round_to_buckets: false,
            underestimate_fraction: 0.3,
            max_secs: 172_800,
        };
        let mut rng = Pcg64::new(53);
        let runtime = SimDuration::from_secs(10_000);
        let n = 10_000;
        let under = (0..n)
            .filter(|_| m.sample(&mut rng, runtime) < runtime)
            .count();
        let frac = under as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "underestimate fraction {frac}");
    }

    #[test]
    fn perfect_estimates_without_excess() {
        let m = WalltimeModel {
            overestimate_mean_excess: 0.0,
            round_to_buckets: false,
            underestimate_fraction: 0.0,
            max_secs: 172_800,
        };
        let mut rng = Pcg64::new(54);
        let runtime = SimDuration::from_secs(1234);
        assert_eq!(m.sample(&mut rng, runtime).as_secs(), 1234);
    }

    #[test]
    fn validation_errors() {
        assert!(RuntimeModel {
            p_short: -0.1,
            ..runtime_model()
        }
        .validate()
        .is_err());
        assert!(RuntimeModel {
            min_secs: 0.0,
            ..runtime_model()
        }
        .validate()
        .is_err());
        let wt = WalltimeModel {
            overestimate_mean_excess: -1.0,
            round_to_buckets: false,
            underestimate_fraction: 0.0,
            max_secs: 100,
        };
        assert!(wt.validate().is_err());
    }
}
