//! Per-node memory-demand and memory-intensity models.
//!
//! Production memory-utilization studies agree on the shape this model
//! reproduces: the bulk of jobs touch a modest fraction of node DRAM
//! (median well under 25%), while a small heavy class needs as much as — or
//! more than — a node physically has. That heavy class is what either
//! strands CPUs (node-count inflation on conventional clusters) or borrows
//! pool memory (on disaggregated ones), so its weight and tail are the
//! experiment's most sensitive knobs.

use crate::error::WorkloadError;
use dmhpc_des::rng::dist::{Distribution, LogNormal, Normal};
use dmhpc_des::rng::Pcg64;

/// Two-class lognormal mixture over per-node memory demand, expressed as a
/// fraction of a reference node's DRAM and converted to MiB.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Reference node DRAM, MiB (the machine the fractions are calibrated
    /// against).
    pub node_mem_mib: u64,
    /// Median footprint of the light class, as a fraction of node DRAM.
    pub light_median_frac: f64,
    /// Log-space sigma of the light class.
    pub light_sigma: f64,
    /// Share of jobs in the heavy class.
    pub heavy_fraction: f64,
    /// Median footprint of the heavy class, as a fraction of node DRAM
    /// (values near or above 1 are the interesting regime).
    pub heavy_median_frac: f64,
    /// Log-space sigma of the heavy class.
    pub heavy_sigma: f64,
    /// Hard cap as a multiple of node DRAM (no job needs more than this per
    /// node at its natural size).
    pub cap_frac: f64,
    /// Floor, MiB.
    pub min_mib: u64,
}

impl MemoryModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |reason: String| Err(WorkloadError::new("memory", reason));
        if self.node_mem_mib == 0 {
            return err("node_mem_mib must be positive".into());
        }
        if !(self.light_median_frac > 0.0 && self.heavy_median_frac > 0.0) {
            return err("median fractions must be positive".into());
        }
        if !(self.light_sigma > 0.0 && self.heavy_sigma > 0.0) {
            return err("sigmas must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.heavy_fraction) {
            return err(format!(
                "heavy_fraction {} outside [0,1]",
                self.heavy_fraction
            ));
        }
        if self.cap_frac.is_nan() || self.cap_frac < self.light_median_frac {
            return err("cap_frac below the light median makes no sense".into());
        }
        if self.min_mib == 0 {
            return err("min_mib must be positive".into());
        }
        Ok(())
    }

    /// Draw one per-node footprint in MiB.
    pub fn sample(&self, rng: &mut Pcg64) -> u64 {
        let heavy = rng.chance(self.heavy_fraction);
        let (median, sigma) = if heavy {
            (self.heavy_median_frac, self.heavy_sigma)
        } else {
            (self.light_median_frac, self.light_sigma)
        };
        let frac = LogNormal::with_median(median, sigma)
            .sample(rng)
            .clamp(1e-4, self.cap_frac);
        let mib = (frac * self.node_mem_mib as f64).round() as u64;
        mib.max(self.min_mib)
    }
}

/// Memory-access intensity coupled to footprint: big-footprint jobs tend to
/// be the ones hammering memory, with noise so the correlation is loose.
#[derive(Debug, Clone, Copy)]
pub struct IntensityModel {
    /// Intensity of a zero-footprint job.
    pub base: f64,
    /// Added intensity as the footprint fraction approaches `cap`, scaled
    /// linearly.
    pub mem_coupling: f64,
    /// Gaussian noise sigma.
    pub noise: f64,
}

impl IntensityModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |reason: String| Err(WorkloadError::new("intensity", reason));
        if !(0.0..=1.0).contains(&self.base) {
            return err(format!("base {} outside [0,1]", self.base));
        }
        if !(self.mem_coupling >= 0.0 && self.noise >= 0.0) {
            return err("mem_coupling and noise must be >= 0".into());
        }
        Ok(())
    }

    /// Draw intensity for a job whose footprint is `mem_frac` of node DRAM.
    pub fn sample(&self, rng: &mut Pcg64, mem_frac: f64) -> f64 {
        let coupled = self.base + self.mem_coupling * mem_frac.clamp(0.0, 1.5) / 1.5;
        let noisy = if self.noise > 0.0 {
            coupled + Normal::new(0.0, self.noise).sample(rng)
        } else {
            coupled
        };
        noisy.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel {
            node_mem_mib: 256 * 1024,
            light_median_frac: 0.15,
            light_sigma: 0.8,
            heavy_fraction: 0.12,
            heavy_median_frac: 1.3,
            heavy_sigma: 0.5,
            cap_frac: 4.0,
            min_mib: 256,
        }
    }

    #[test]
    fn bounds_respected() {
        let m = model();
        m.validate().unwrap();
        let mut rng = Pcg64::new(61);
        for _ in 0..50_000 {
            let mib = m.sample(&mut rng);
            assert!(mib >= 256);
            assert!(mib <= 4 * 256 * 1024);
        }
    }

    #[test]
    fn median_near_light_class() {
        let m = model();
        let mut rng = Pcg64::new(62);
        let mut v: Vec<u64> = (0..100_001).map(|_| m.sample(&mut rng)).collect();
        v.sort_unstable();
        let median_frac = v[50_000] as f64 / m.node_mem_mib as f64;
        // Light class median 0.15 dominates; the heavy 12% pulls it up a bit.
        assert!(
            median_frac > 0.10 && median_frac < 0.30,
            "median fraction {median_frac}"
        );
    }

    #[test]
    fn heavy_tail_exists() {
        let m = model();
        let mut rng = Pcg64::new(63);
        let n = 100_000;
        let over_node = (0..n)
            .filter(|_| m.sample(&mut rng) > m.node_mem_mib)
            .count();
        let frac = over_node as f64 / n as f64;
        // Heavy class is 12% with median 1.3×: roughly half+ of it exceeds
        // the node, so expect ~7–12% over-node jobs.
        assert!(
            frac > 0.05 && frac < 0.15,
            "over-node fraction {frac} out of band"
        );
    }

    #[test]
    fn zero_heavy_fraction_never_exceeds_cap_by_class() {
        let m = MemoryModel {
            heavy_fraction: 0.0,
            ..model()
        };
        let mut rng = Pcg64::new(64);
        let n = 50_000;
        let over = (0..n)
            .filter(|_| m.sample(&mut rng) > m.node_mem_mib)
            .count();
        // Light class at median 0.15, σ=0.8: P(>1.0) ≈ Φ(-ln(6.7)/0.8) ≈ 0.9%.
        assert!(over as f64 / (n as f64) < 0.03);
    }

    #[test]
    fn intensity_correlates_with_memory() {
        let im = IntensityModel {
            base: 0.2,
            mem_coupling: 0.6,
            noise: 0.05,
        };
        im.validate().unwrap();
        let mut rng = Pcg64::new(65);
        let small: f64 = (0..5000).map(|_| im.sample(&mut rng, 0.05)).sum::<f64>() / 5000.0;
        let large: f64 = (0..5000).map(|_| im.sample(&mut rng, 1.4)).sum::<f64>() / 5000.0;
        assert!(
            large > small + 0.3,
            "intensity must rise with footprint ({small} vs {large})"
        );
        for _ in 0..1000 {
            let i = im.sample(&mut rng, 2.0);
            assert!((0.0..=1.0).contains(&i));
        }
    }

    #[test]
    fn validation_errors() {
        assert!(MemoryModel {
            node_mem_mib: 0,
            ..model()
        }
        .validate()
        .is_err());
        assert!(MemoryModel {
            heavy_fraction: 2.0,
            ..model()
        }
        .validate()
        .is_err());
        assert!(MemoryModel {
            cap_frac: 0.01,
            ..model()
        }
        .validate()
        .is_err());
        assert!(IntensityModel {
            base: 1.5,
            mem_coupling: 0.0,
            noise: 0.0
        }
        .validate()
        .is_err());
    }
}
