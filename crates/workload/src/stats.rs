//! Workload characterization (reproduction targets T1 and F1).

use crate::workload_set::Workload;
use dmhpc_des::stats::{CdfCollector, OnlineStats};

/// Summary statistics of one workload, relative to a reference node size.
/// This is one row of reproduction table T1.
#[derive(Debug, Clone)]
pub struct WorkloadSummary {
    /// Workload label.
    pub name: String,
    /// Job count.
    pub jobs: usize,
    /// Arrival span in hours.
    pub span_hours: f64,
    /// Total base node-hours.
    pub node_hours: f64,
    /// Mean node request.
    pub mean_nodes: f64,
    /// Largest node request.
    pub max_nodes: u32,
    /// Median runtime, seconds.
    pub median_runtime_s: f64,
    /// Mean runtime, seconds.
    pub mean_runtime_s: f64,
    /// Mean walltime-estimate accuracy (runtime/walltime).
    pub mean_accuracy: f64,
    /// Median per-node footprint as a fraction of the reference node DRAM.
    pub median_mem_frac: f64,
    /// 95th-percentile footprint fraction.
    pub p95_mem_frac: f64,
    /// Fraction of jobs whose per-node footprint exceeds node DRAM (the
    /// stranding class).
    pub over_node_fraction: f64,
    /// Fraction of total node-hours contributed by the stranding class.
    pub over_node_work_fraction: f64,
}

/// Compute the T1 row for a workload against a node of `node_mem_mib`.
pub fn summarize(name: &str, w: &Workload, node_mem_mib: u64) -> WorkloadSummary {
    assert!(node_mem_mib > 0, "reference node memory must be positive");
    let mut nodes = OnlineStats::new();
    let mut runtime = OnlineStats::new();
    let mut accuracy = OnlineStats::new();
    let mut runtime_cdf = CdfCollector::with_capacity(w.len());
    let mut mem_cdf = CdfCollector::with_capacity(w.len());
    let mut over = 0usize;
    let mut over_work = 0.0f64;
    for j in w.iter() {
        nodes.push(j.nodes as f64);
        runtime.push(j.runtime.as_secs_f64());
        accuracy.push(j.estimate_accuracy());
        runtime_cdf.push(j.runtime.as_secs_f64());
        mem_cdf.push(j.mem_per_node as f64 / node_mem_mib as f64);
        if j.mem_per_node > node_mem_mib {
            over += 1;
            over_work += j.node_seconds();
        }
    }
    let total_work = w.total_node_seconds();
    WorkloadSummary {
        name: name.to_owned(),
        jobs: w.len(),
        span_hours: w.arrival_span().as_hours_f64(),
        node_hours: total_work / 3600.0,
        mean_nodes: nodes.mean(),
        max_nodes: w.max_nodes(),
        median_runtime_s: runtime_cdf.quantile(0.5),
        mean_runtime_s: runtime.mean(),
        mean_accuracy: accuracy.mean(),
        median_mem_frac: mem_cdf.quantile(0.5),
        p95_mem_frac: mem_cdf.quantile(0.95),
        over_node_fraction: if w.is_empty() {
            0.0
        } else {
            over as f64 / w.len() as f64
        },
        over_node_work_fraction: if total_work == 0.0 {
            0.0
        } else {
            over_work / total_work
        },
    }
}

/// The per-node memory-demand CDF (fractions of reference node DRAM), at
/// most `points` figure-ready points. This is reproduction figure F1.
pub fn memory_demand_cdf(w: &Workload, node_mem_mib: u64, points: usize) -> Vec<(f64, f64)> {
    let mut cdf = CdfCollector::with_capacity(w.len());
    for j in w.iter() {
        cdf.push(j.mem_per_node as f64 / node_mem_mib as f64);
    }
    if cdf.is_empty() {
        return Vec::new();
    }
    cdf.points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SystemPreset;
    use crate::JobBuilder;

    #[test]
    fn summary_of_handmade_workload() {
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(0)
                .nodes(2)
                .runtime_secs(100, 200)
                .mem_per_node(500)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(3600)
                .nodes(4)
                .runtime_secs(300, 300)
                .mem_per_node(1500)
                .build(),
        ]);
        let s = summarize("test", &w, 1000);
        assert_eq!(s.jobs, 2);
        assert!((s.span_hours - 1.0).abs() < 1e-9);
        assert!((s.mean_nodes - 3.0).abs() < 1e-12);
        assert_eq!(s.max_nodes, 4);
        assert!((s.node_hours - (200.0 + 1200.0) / 3600.0).abs() < 1e-9);
        assert!((s.mean_accuracy - (0.5 + 1.0) / 2.0).abs() < 1e-12);
        assert!((s.over_node_fraction - 0.5).abs() < 1e-12);
        // Job 2 contributes 1200 of 1400 node-seconds.
        assert!((s.over_node_work_fraction - 1200.0 / 1400.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_covers() {
        let spec = SystemPreset::MidCluster.synthetic_spec(2000);
        let w = spec.generate(5);
        let pts = memory_demand_cdf(&w, spec.memory.node_mem_mib, 50);
        assert!(!pts.is_empty());
        assert!(pts.len() <= 50);
        for win in pts.windows(2) {
            assert!(win[1].0 >= win[0].0);
            assert!(win[1].1 >= win[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        // The stranding class exists: the CDF's last values exceed 1× node.
        assert!(pts.last().unwrap().0 > 1.0);
    }

    #[test]
    fn empty_workload_summary() {
        let s = summarize("empty", &Workload::new(), 1000);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.over_node_fraction, 0.0);
        assert!(memory_demand_cdf(&Workload::new(), 1000, 10).is_empty());
    }

    #[test]
    fn presets_show_memory_underutilization_story() {
        // The motivation figure: median well under node DRAM, tail above it.
        for preset in SystemPreset::ALL {
            let spec = preset.synthetic_spec(3000);
            let w = spec.generate(17);
            let s = summarize(preset.name(), &w, spec.memory.node_mem_mib);
            assert!(
                s.median_mem_frac < 0.5,
                "{}: median fraction {} should be small",
                preset.name(),
                s.median_mem_frac
            );
            assert!(
                s.over_node_fraction > 0.02,
                "{}: stranding class missing ({})",
                preset.name(),
                s.over_node_fraction
            );
        }
    }
}
