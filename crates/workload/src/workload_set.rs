//! An ordered collection of jobs.

use crate::job::{Job, JobId};
use dmhpc_des::time::{SimDuration, SimTime};

/// A workload: jobs sorted by `(arrival, id)`. The simulator consumes jobs
/// in this order; keeping the invariant here (rather than re-sorting in the
/// engine) makes trace transforms cheap to compose.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    jobs: Vec<Job>,
}

impl Workload {
    /// An empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary-order jobs; sorts and validates.
    ///
    /// # Panics
    /// Panics if any job fails [`Job::validate`] or an id repeats —
    /// workloads come from generators/parsers that must not emit garbage.
    pub fn from_jobs(mut jobs: Vec<Job>) -> Self {
        for j in &jobs {
            // lint: allow(panic) — documented panicking constructor; generators and parsers must not emit garbage
            j.validate().expect("invalid job in workload");
        }
        jobs.sort_by_key(|j| (j.arrival, j.id));
        for w in jobs.windows(2) {
            assert!(w[0].id != w[1].id, "duplicate job id {}", w[0].id);
        }
        Workload { jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Iterate in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// Job by id (linear scan — fine for setup-time lookups).
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// First arrival; `None` when empty.
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.jobs.first().map(|j| j.arrival)
    }

    /// Last arrival; `None` when empty.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.jobs.last().map(|j| j.arrival)
    }

    /// Arrival span (last − first); zero when fewer than 2 jobs.
    pub fn arrival_span(&self) -> SimDuration {
        match (self.first_arrival(), self.last_arrival()) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// Total base node-seconds across jobs.
    pub fn total_node_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.node_seconds()).sum()
    }

    /// Largest node request.
    pub fn max_nodes(&self) -> u32 {
        self.jobs.iter().map(|j| j.nodes).max().unwrap_or(0)
    }

    /// Offered load against a machine of `total_nodes`: base node-seconds
    /// divided by available node-seconds over the arrival span. >1 means
    /// the machine cannot keep up.
    pub fn offered_load(&self, total_nodes: u32) -> f64 {
        let span = self.arrival_span().as_secs_f64();
        if span == 0.0 || total_nodes == 0 {
            return 0.0;
        }
        self.total_node_seconds() / (total_nodes as f64 * span)
    }
}

impl IntoIterator for Workload {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

/// Incremental workload construction with automatic id assignment.
#[derive(Debug, Default)]
pub struct WorkloadBuilder {
    jobs: Vec<Job>,
    next_id: u64,
}

impl WorkloadBuilder {
    /// An empty builder starting ids at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next id the builder will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Add a fully-specified job (id must be fresh).
    pub fn push(&mut self, job: Job) -> &mut Self {
        self.next_id = self.next_id.max(job.id.0 + 1);
        self.jobs.push(job);
        self
    }

    /// Add a job built from a closure over a [`crate::JobBuilder`] seeded
    /// with the next fresh id.
    pub fn add<F>(&mut self, f: F) -> JobId
    where
        F: FnOnce(crate::JobBuilder) -> crate::JobBuilder,
    {
        let id = self.next_id;
        self.next_id += 1;
        let job = f(crate::JobBuilder::new(id)).build();
        let jid = job.id;
        self.jobs.push(job);
        jid
    }

    /// Finish into a sorted, validated workload.
    pub fn build(self) -> Workload {
        Workload::from_jobs(self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobBuilder;

    #[test]
    fn sorts_by_arrival_then_id() {
        let w = Workload::from_jobs(vec![
            JobBuilder::new(3).arrival_secs(50).build(),
            JobBuilder::new(1).arrival_secs(100).build(),
            JobBuilder::new(2).arrival_secs(50).build(),
        ]);
        let ids: Vec<u64> = w.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert_eq!(w.first_arrival(), Some(SimTime::from_secs(50)));
        assert_eq!(w.last_arrival(), Some(SimTime::from_secs(100)));
        assert_eq!(w.arrival_span(), SimDuration::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn rejects_duplicate_ids() {
        Workload::from_jobs(vec![JobBuilder::new(1).build(), JobBuilder::new(1).build()]);
    }

    #[test]
    fn offered_load_math() {
        // Two jobs: 10 nodes × 100 s each = 2000 node-s over a 100 s span
        // on a 100-node machine = 0.2 load.
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(0)
                .nodes(10)
                .runtime_secs(100, 200)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(100)
                .nodes(10)
                .runtime_secs(100, 200)
                .build(),
        ]);
        assert!((w.offered_load(100) - 0.2).abs() < 1e-12);
        assert_eq!(w.max_nodes(), 10);
        assert!((w.total_node_seconds() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.first_arrival(), None);
        assert_eq!(w.offered_load(100), 0.0);
        assert_eq!(w.arrival_span(), SimDuration::ZERO);
    }

    #[test]
    fn builder_assigns_ids() {
        let mut b = WorkloadBuilder::new();
        let a = b.add(|j| j.arrival_secs(10));
        let c = b.add(|j| j.arrival_secs(5));
        assert_eq!(a, JobId(0));
        assert_eq!(c, JobId(1));
        let w = b.build();
        assert_eq!(w.len(), 2);
        assert_eq!(w.jobs()[0].id, JobId(1), "earlier arrival first");
    }

    #[test]
    fn builder_push_respects_existing_ids() {
        let mut b = WorkloadBuilder::new();
        b.push(JobBuilder::new(10).build());
        let id = b.add(|j| j);
        assert_eq!(id, JobId(11));
    }

    #[test]
    fn get_by_id() {
        let w = Workload::from_jobs(vec![JobBuilder::new(5).build()]);
        assert!(w.get(JobId(5)).is_some());
        assert!(w.get(JobId(6)).is_none());
    }
}
