//! # dmhpc-workload — jobs, traces, and synthetic workload models
//!
//! Batch-scheduling evaluation stands or falls on its workload. This crate
//! provides:
//!
//! * [`Job`]/[`Workload`] — the job model: arrival, node count, user
//!   walltime request, actual runtime, **per-node memory footprint**, and
//!   **memory intensity** (how hard the job hits memory, which drives the
//!   far-memory dilation models).
//! * [`swf`] — a complete Standard Workload Format (SWF) reader/writer, so
//!   real traces from the Parallel Workloads Archive (or site-private ones)
//!   drop in directly. SWF carries per-processor memory, which we map to
//!   per-node footprints.
//! * [`synthetic`] — generators in the Lublin–Feitelson tradition
//!   (power-of-two-biased sizes, hyper-Gamma runtimes, daily-cycle arrivals)
//!   extended with the lognormal-mixture memory model that production
//!   characterization studies report (most jobs use a small fraction of node
//!   DRAM; a few percent need more than the node has). Three
//!   [`SystemPreset`]s package calibrations used throughout the experiments.
//! * [`source`] — lazy streaming job sources for open-system (service)
//!   runs: Poisson/daily/MMPP arrival processes, rate- or
//!   utilization-targeted load control, and duration/job-count horizons,
//!   all deterministic per seed.
//! * [`transform`] — trace surgery: load rescaling against a target
//!   machine, truncation, filtering, arrival-origin shifts.
//! * [`stats`] — workload characterization tables (T1/F1 in the
//!   reproduction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod job;
mod slo;
pub mod source;
pub mod stats;
pub mod swf;
pub mod synthetic;
pub mod transform;
mod workload_set;

pub use error::WorkloadError;
pub use job::{Job, JobBuilder, JobId};
pub use slo::{Slo, SloModel};
pub use source::{ArrivalProcess, Horizon, JobSource, LoadControl, StreamingSynthetic};
pub use synthetic::{SyntheticSpec, SystemPreset};
pub use workload_set::{Workload, WorkloadBuilder};
