//! Per-job service-level objectives.
//!
//! An [`Slo`] is a *wait budget*: how long a job may sit queued past its
//! arrival before the objective is missed. Deadline-aware orderings (EDF,
//! least-laxity) consume the derived absolute deadline; the attainment
//! metric counts jobs whose actual wait stayed inside the budget. Jobs
//! without an SLO are unconstrained — every serialization and hashing layer
//! treats `None` as "write nothing", so SLO-free workloads stay
//! bit-identical to their pre-SLO form.

use crate::error::WorkloadError;
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::{SimDuration, SimTime};

/// A job's service-level objective, expressed as a wait budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slo {
    /// Absolute wait budget: the job should start within `deadline_s`
    /// seconds of its arrival.
    Deadline {
        /// Wait budget in seconds from arrival (> 0, finite).
        deadline_s: f64,
    },
    /// Relative wait budget: the job should start within
    /// `factor × walltime` of its arrival. Short jobs get tight deadlines,
    /// long jobs lenient ones — the window-based job-value framing.
    BudgetFactor {
        /// Multiplier on the walltime request (> 0, finite).
        factor: f64,
    },
}

impl Slo {
    /// Validate the objective's parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            Slo::Deadline { deadline_s } => {
                if !(deadline_s.is_finite() && deadline_s > 0.0) {
                    return Err(WorkloadError::new(
                        "slo",
                        format!("deadline_s must be positive and finite, got {deadline_s}"),
                    ));
                }
            }
            Slo::BudgetFactor { factor } => {
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(WorkloadError::new(
                        "slo",
                        format!("budget factor must be positive and finite, got {factor}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The wait budget for a job with the given walltime request.
    pub fn wait_budget(&self, walltime: SimDuration) -> SimDuration {
        match *self {
            Slo::Deadline { deadline_s } => SimDuration::from_secs_f64(deadline_s),
            Slo::BudgetFactor { factor } => walltime.scale(factor),
        }
    }

    /// The absolute start deadline for a job arriving at `arrival` with the
    /// given walltime request.
    pub fn deadline_for(&self, arrival: SimTime, walltime: SimDuration) -> SimTime {
        arrival.saturating_add(self.wait_budget(walltime))
    }
}

/// A seeded stamping model: draws a [`Slo::BudgetFactor`] per job, uniform
/// in `[factor_min, factor_max]`. Used by the synthetic generators to attach
/// heterogeneous deadlines, which is what makes deadline-aware orderings
/// diverge from FCFS (a constant absolute deadline preserves arrival order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloModel {
    /// Smallest budget factor (> 0).
    // lint: allow(hash-field) — the model acts through per-job Slo stamps, which workload_digest folds
    pub factor_min: f64,
    /// Largest budget factor (≥ `factor_min`).
    // lint: allow(hash-field) — the model acts through per-job Slo stamps, which workload_digest folds
    pub factor_max: f64,
}

impl SloModel {
    /// Validate the model's parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.factor_min.is_finite() && self.factor_min > 0.0) {
            return Err(WorkloadError::new(
                "slo",
                format!(
                    "factor_min must be positive and finite, got {}",
                    self.factor_min
                ),
            ));
        }
        if !(self.factor_max.is_finite() && self.factor_max >= self.factor_min) {
            return Err(WorkloadError::new(
                "slo",
                format!(
                    "factor_max must be finite and >= factor_min, got {}",
                    self.factor_max
                ),
            ));
        }
        Ok(())
    }

    /// Draw one objective. One uniform per job, from the caller's stream.
    pub fn sample(&self, rng: &mut Pcg64) -> Slo {
        Slo::BudgetFactor {
            factor: rng.range_f64(self.factor_min, self.factor_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Slo::Deadline { deadline_s: 0.0 }.validate().is_err());
        assert!(Slo::Deadline {
            deadline_s: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(Slo::BudgetFactor { factor: -1.0 }.validate().is_err());
        assert!(Slo::Deadline { deadline_s: 60.0 }.validate().is_ok());
        assert!(Slo::BudgetFactor { factor: 0.5 }.validate().is_ok());
        assert!(SloModel {
            factor_min: 0.0,
            factor_max: 1.0
        }
        .validate()
        .is_err());
        assert!(SloModel {
            factor_min: 2.0,
            factor_max: 1.0
        }
        .validate()
        .is_err());
        assert!(SloModel {
            factor_min: 0.5,
            factor_max: 2.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn budgets_and_deadlines() {
        let wall = SimDuration::from_secs(1000);
        let arr = SimTime::from_secs(50);
        let abs = Slo::Deadline { deadline_s: 300.0 };
        assert_eq!(abs.wait_budget(wall), SimDuration::from_secs(300));
        assert_eq!(abs.deadline_for(arr, wall), SimTime::from_secs(350));
        let rel = Slo::BudgetFactor { factor: 0.5 };
        assert_eq!(rel.wait_budget(wall), SimDuration::from_secs(500));
        assert_eq!(rel.deadline_for(arr, wall), SimTime::from_secs(550));
    }

    #[test]
    fn model_samples_inside_range_and_deterministically() {
        let m = SloModel {
            factor_min: 0.25,
            factor_max: 4.0,
        };
        let mut a = Pcg64::new(7);
        let mut b = Pcg64::new(7);
        for _ in 0..256 {
            let sa = m.sample(&mut a);
            let sb = m.sample(&mut b);
            assert_eq!(sa, sb);
            sa.validate().unwrap();
            match sa {
                Slo::BudgetFactor { factor } => {
                    assert!((0.25..=4.0).contains(&factor));
                }
                other => panic!("unexpected variant {other:?}"),
            }
        }
    }
}
