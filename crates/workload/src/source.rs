//! Lazy, seeded streaming job sources for open-system runs.
//!
//! A closed batch experiment materializes its whole [`crate::Workload`] up
//! front; an open *service* run instead pulls jobs on demand from a
//! [`JobSource`] until a [`Horizon`] is reached, so memory stays O(1) in the
//! number of jobs. [`StreamingSynthetic`] is the reference source: it drives
//! the existing [`SyntheticSpec`] component models (sizes, runtimes,
//! walltimes, memory, intensity, users) from the same forked PCG64 streams
//! the batch generator uses — stream forks are independent of parent draw
//! count, so job *i* of the stream is bit-identical to job *i* of
//! [`SyntheticSpec::generate`] when the arrival parameters agree — while the
//! arrival process itself is chosen per run:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at the target rate;
//! * [`ArrivalProcess::Daily`] — the daily-cycle nonhomogeneous Poisson of
//!   [`ArrivalModel`], thinned exactly;
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson process
//!   for bursty traffic: phases alternate between a burst rate and a quiet
//!   rate with exponential dwell times, balanced so the long-run mean rate
//!   is preserved exactly while adding burst-scale correlation (see the
//!   variant docs for the phase-rate derivation).
//!
//! Load is controlled either by a fixed mean inter-arrival time
//! ([`LoadControl::Rate`]) or by a target machine utilization
//! ([`LoadControl::Utilization`]): the latter derives the rate from the job
//! size/runtime models via a deterministic pilot sample, so "run this
//! machine at 85%" is a one-parameter experiment axis. Everything is a pure
//! function of `(spec, process, load, horizon, seed)` — two sources built
//! with the same inputs emit identical job streams regardless of thread
//! count or interleaving, which is what makes open-system grid cells
//! replayable and cacheable.

use crate::error::WorkloadError;
use crate::job::{Job, JobId};
use crate::slo::Slo;
use crate::synthetic::{ArrivalModel, SyntheticSpec};
use dmhpc_des::rng::dist::Zipf;
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::{SimDuration, SimTime};

/// A lazy stream of jobs in non-decreasing arrival order.
///
/// Implementations must be deterministic: construction parameters fully
/// determine the emitted sequence.
pub trait JobSource: Send {
    /// The next job, or `None` once the source's horizon is reached. Jobs
    /// arrive in non-decreasing arrival order with distinct, increasing ids.
    fn next_job(&mut self) -> Option<Job>;

    /// Remaining jobs when the horizon is a job count; `None` for
    /// duration-bounded (open-ended count) sources.
    fn size_hint(&self) -> Option<u64>;
}

/// When an open-system stream stops emitting arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// Stop after exactly this many jobs.
    Jobs(u64),
    /// Stop at the first arrival past this instant (measured from t = 0).
    Duration(SimDuration),
}

impl Horizon {
    /// Validate: both variants must be non-empty — an open-system run with
    /// no horizon would never terminate.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            Horizon::Jobs(0) => Err(WorkloadError::new("horizon", "job-count horizon is zero")),
            Horizon::Duration(d) if d.is_zero() => {
                Err(WorkloadError::new("horizon", "duration horizon is zero"))
            }
            _ => Ok(()),
        }
    }
}

/// The inter-arrival process of a streaming source. The mean rate comes
/// from [`LoadControl`]; this chooses the shape around that mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson,
    /// Daily-cycle nonhomogeneous Poisson with the given peak-to-trough
    /// rate ratio (≥ 1), exactly as [`ArrivalModel::daily`].
    Daily {
        /// Ratio of peak rate to trough rate (≥ 1).
        peak_to_trough: f64,
    },
    /// Two-state Markov-modulated Poisson process. The burst phase runs at
    /// `burst_ratio ×` the mean rate `r`; the quiet phase and the dwell
    /// balance are derived so the long-run mean rate is exactly `r`:
    ///
    /// * `burst_ratio ∈ [1, 2)` — quiet rate `(2 − burst_ratio) × r` with
    ///   equal mean dwell times in both phases (the historical derivation,
    ///   kept bit-exact);
    /// * `burst_ratio ≥ 2` — an interrupted Poisson process: the quiet
    ///   phase is silent (rate 0) and its mean dwell is stretched to
    ///   `(burst_ratio − 1) ×` the burst dwell, so the burst phase holds
    ///   `1 / burst_ratio` of the time and `burst_ratio × r / burst_ratio
    ///   = r` on average. The two branches agree in the limit at 2.
    Mmpp {
        /// Burst-phase rate as a multiple of the mean rate (≥ 1).
        burst_ratio: f64,
        /// Mean dwell time in the burst phase, seconds. For
        /// `burst_ratio < 2` the quiet phase dwells equally long on
        /// average; above, its dwell scales up to keep the mean rate.
        mean_dwell_secs: f64,
    },
}

impl ArrivalProcess {
    /// Validate process-shape parameters (typed, per the workload
    /// validation convention).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ArrivalProcess::Poisson => Ok(()),
            ArrivalProcess::Daily { peak_to_trough } => {
                if !(peak_to_trough >= 1.0 && peak_to_trough.is_finite()) {
                    return Err(WorkloadError::new(
                        "arrivals",
                        format!("peak_to_trough must be >= 1 and finite, got {peak_to_trough}"),
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Mmpp {
                burst_ratio,
                mean_dwell_secs,
            } => {
                if !(burst_ratio >= 1.0 && burst_ratio.is_finite()) {
                    return Err(WorkloadError::new(
                        "arrivals",
                        format!("MMPP burst_ratio must be >= 1 and finite, got {burst_ratio}"),
                    ));
                }
                if !(mean_dwell_secs > 0.0 && mean_dwell_secs.is_finite()) {
                    return Err(WorkloadError::new(
                        "arrivals",
                        format!(
                            "MMPP mean_dwell_secs must be positive and finite, \
                             got {mean_dwell_secs}"
                        ),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Stable short name for labels and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Daily { .. } => "daily",
            ArrivalProcess::Mmpp { .. } => "mmpp",
        }
    }
}

/// How the mean arrival rate of an open stream is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadControl {
    /// Fixed mean inter-arrival time, seconds.
    Rate {
        /// Mean seconds between submissions.
        mean_interarrival_secs: f64,
    },
    /// Target utilization of a machine with `total_nodes` nodes. The mean
    /// inter-arrival is derived as
    /// `E[nodes × runtime] / (total_nodes × target)` where the expectation
    /// is estimated from a deterministic pilot sample of the size/runtime
    /// models (see [`StreamingSynthetic::new`]).
    Utilization {
        /// Target long-run node utilization (offered load), in `(0, 2]`.
        target: f64,
        /// Node count of the machine being loaded.
        total_nodes: u32,
    },
}

impl LoadControl {
    /// Validate load-control parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            LoadControl::Rate {
                mean_interarrival_secs,
            } => {
                if !(mean_interarrival_secs > 0.0 && mean_interarrival_secs.is_finite()) {
                    return Err(WorkloadError::new(
                        "load",
                        format!(
                            "mean inter-arrival must be positive and finite, \
                             got {mean_interarrival_secs}"
                        ),
                    ));
                }
                Ok(())
            }
            LoadControl::Utilization {
                target,
                total_nodes,
            } => {
                if !(target > 0.0 && target <= 2.0 && target.is_finite()) {
                    return Err(WorkloadError::new(
                        "load",
                        format!("utilization target must be in (0, 2], got {target}"),
                    ));
                }
                if total_nodes == 0 {
                    return Err(WorkloadError::new(
                        "load",
                        "utilization target needs a machine with at least one node",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Number of pilot draws used to estimate `E[nodes × runtime]` for
/// [`LoadControl::Utilization`]. Drawn from dedicated streams, so the pilot
/// never perturbs the job streams themselves.
const PILOT_JOBS: usize = 512;

/// Fork labels for the pilot streams — far outside the stable 1–7 labels of
/// the per-component generation streams.
const PILOT_SIZE_STREAM: u64 = 0x9101;
const PILOT_RUNTIME_STREAM: u64 = 0x9102;

/// State of the two-phase MMPP modulator.
#[derive(Debug, Clone, Copy)]
struct MmppState {
    rate_high: f64,
    rate_low: f64,
    /// Mean dwell in the burst phase, seconds.
    dwell_high_secs: f64,
    /// Mean dwell in the quiet phase, seconds (equal to the burst dwell for
    /// `burst_ratio < 2`, stretched above — see [`ArrivalProcess::Mmpp`]).
    dwell_low_secs: f64,
    /// Currently in the burst phase?
    high: bool,
    /// Absolute time (seconds) of the next phase switch.
    switch_at: f64,
}

impl MmppState {
    /// The next arrival strictly after `t`. Uses memorylessness: an
    /// exponential candidate drawn at the current phase rate is valid while
    /// it lands before the phase switch; past the switch, time advances to
    /// the switch, the phase toggles with a fresh dwell, and the residual
    /// is redrawn at the new rate.
    fn next_after(&mut self, rng: &mut Pcg64, mut t: f64) -> f64 {
        loop {
            let rate = if self.high {
                self.rate_high
            } else {
                self.rate_low
            };
            // A silent quiet phase (interrupted Poisson, burst_ratio ≥ 2)
            // yields dt = +inf here, which correctly falls through to the
            // phase switch while consuming one draw — the same draw count
            // per loop iteration as an audible phase.
            let dt = -rng.next_f64_open().ln() / rate;
            if t + dt <= self.switch_at {
                return t + dt;
            }
            t = self.switch_at;
            self.high = !self.high;
            let mean_dwell = if self.high {
                self.dwell_high_secs
            } else {
                self.dwell_low_secs
            };
            let dwell = -rng.next_f64_open().ln() * mean_dwell;
            self.switch_at = t + dwell;
        }
    }
}

/// A [`JobSource`] streaming jobs from the synthetic component models.
///
/// Construction is fallible and fully validates every parameter; streaming
/// never fails after that. See the module docs for determinism and
/// batch-replay guarantees.
#[derive(Debug, Clone)]
pub struct StreamingSynthetic {
    spec: SyntheticSpec,
    arrivals: ArrivalModel,
    mmpp: Option<MmppState>,
    horizon: Horizon,
    r_arrival: Pcg64,
    r_size: Pcg64,
    r_runtime: Pcg64,
    r_walltime: Pcg64,
    r_memory: Pcg64,
    r_intensity: Pcg64,
    r_user: Pcg64,
    r_slo: Pcg64,
    /// Fixed objective stamped on every job when the spec carries no
    /// [`crate::SloModel`] of its own (the service layer's default stamp).
    default_slo: Option<Slo>,
    user_dist: Zipf,
    t_secs: f64,
    emitted: u64,
    done: bool,
}

impl StreamingSynthetic {
    /// Build a stream over `spec`'s component models (its `n_jobs` and
    /// `arrivals` fields are ignored — the horizon and the
    /// `(process, load)` pair replace them).
    ///
    /// For [`LoadControl::Utilization`], `E[nodes × runtime]` is estimated
    /// here from a pilot sample of [`PILOT_JOBS`] draws on dedicated RNG
    /// streams, making the rate a deterministic function of
    /// `(spec, seed, target)`.
    pub fn new(
        spec: SyntheticSpec,
        process: ArrivalProcess,
        load: LoadControl,
        horizon: Horizon,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        spec.validate()?;
        process.validate()?;
        load.validate()?;
        horizon.validate()?;

        let root = Pcg64::new(seed);
        let mean_interarrival_secs = match load {
            LoadControl::Rate {
                mean_interarrival_secs,
            } => mean_interarrival_secs,
            LoadControl::Utilization {
                target,
                total_nodes,
            } => {
                let mut r_size = root.fork(PILOT_SIZE_STREAM);
                let mut r_runtime = root.fork(PILOT_RUNTIME_STREAM);
                let mut total_node_secs = 0.0;
                for _ in 0..PILOT_JOBS {
                    let nodes = spec.sizes.sample(&mut r_size) as f64;
                    let runtime = spec.runtime.sample(&mut r_runtime);
                    total_node_secs += nodes * runtime.as_secs_f64();
                }
                let mean_job_node_secs = total_node_secs / PILOT_JOBS as f64;
                mean_job_node_secs / (total_nodes as f64 * target)
            }
        };

        let arrivals = match process {
            ArrivalProcess::Daily { peak_to_trough } => {
                ArrivalModel::daily(mean_interarrival_secs, peak_to_trough)
            }
            _ => ArrivalModel::poisson(mean_interarrival_secs),
        };
        arrivals.validate()?;

        // Same stream labels as `SyntheticSpec::generate` (stable ABI), so
        // job i of this stream replays job i of the batch generator.
        let mut r_arrival = root.fork(1);
        let mmpp = match process {
            ArrivalProcess::Mmpp {
                burst_ratio,
                mean_dwell_secs,
            } => {
                let rate = 1.0 / mean_interarrival_secs;
                // Phase-rate balance: below 2 the quiet phase absorbs the
                // burst surplus at equal dwell; from 2 up the quiet phase
                // goes silent and its dwell stretches instead. Both keep
                // the long-run mean at `rate` exactly.
                let (rate_low, dwell_low_secs) = if burst_ratio < 2.0 {
                    (rate * (2.0 - burst_ratio), mean_dwell_secs)
                } else {
                    (0.0, (burst_ratio - 1.0) * mean_dwell_secs)
                };
                let dwell = -r_arrival.next_f64_open().ln() * mean_dwell_secs;
                Some(MmppState {
                    rate_high: rate * burst_ratio,
                    rate_low,
                    dwell_high_secs: mean_dwell_secs,
                    dwell_low_secs,
                    high: true,
                    switch_at: dwell,
                })
            }
            _ => None,
        };

        Ok(StreamingSynthetic {
            user_dist: Zipf::new(spec.users, spec.user_zipf_s),
            r_arrival,
            r_size: root.fork(2),
            r_runtime: root.fork(3),
            r_walltime: root.fork(4),
            r_memory: root.fork(5),
            r_intensity: root.fork(6),
            r_user: root.fork(7),
            r_slo: root.fork(8),
            default_slo: None,
            spec,
            arrivals,
            mmpp,
            horizon,
            t_secs: 0.0,
            emitted: 0,
            done: false,
        })
    }

    /// Stamp every emitted job with a fixed objective. The spec's own
    /// [`crate::SloModel`], when present, takes precedence (it draws a
    /// per-job budget factor); this fixed stamp consumes no randomness.
    pub fn with_default_slo(mut self, slo: Slo) -> Result<Self, WorkloadError> {
        slo.validate()?;
        self.default_slo = Some(slo);
        Ok(self)
    }

    /// The resolved mean inter-arrival time, seconds (after any
    /// utilization-target derivation).
    pub fn mean_interarrival_secs(&self) -> f64 {
        self.arrivals.mean_interarrival_secs
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl JobSource for StreamingSynthetic {
    fn next_job(&mut self) -> Option<Job> {
        if self.done {
            return None;
        }
        if let Horizon::Jobs(n) = self.horizon {
            if self.emitted >= n {
                self.done = true;
                return None;
            }
        }
        let t = match self.mmpp.as_mut() {
            Some(m) => m.next_after(&mut self.r_arrival, self.t_secs),
            None => self.arrivals.next_after(&mut self.r_arrival, self.t_secs),
        };
        if let Horizon::Duration(d) = self.horizon {
            if t > d.as_secs_f64() {
                self.done = true;
                return None;
            }
        }
        self.t_secs = t;

        // Per-job draw order matches the batch generator exactly.
        let nodes = self.spec.sizes.sample(&mut self.r_size);
        let runtime = self.spec.runtime.sample(&mut self.r_runtime);
        let walltime = self.spec.walltime.sample(&mut self.r_walltime, runtime);
        let mem_per_node = self.spec.memory.sample(&mut self.r_memory);
        let mem_frac = mem_per_node as f64 / self.spec.memory.node_mem_mib as f64;
        let intensity = self.spec.intensity.sample(&mut self.r_intensity, mem_frac);
        let user = self.user_dist.sample_index(&mut self.r_user) as u32;
        // Matches the batch generator: the SLO stream advances only when
        // the spec stamps, so unstamped streams replay bit-identically.
        let slo = match &self.spec.slo {
            Some(m) => Some(m.sample(&mut self.r_slo)),
            None => self.default_slo,
        };
        let id = JobId(self.emitted);
        self.emitted += 1;
        Some(Job {
            id,
            user,
            arrival: SimTime::from_secs_f64(t),
            nodes,
            walltime,
            runtime,
            mem_per_node,
            intensity,
            slo,
        })
    }

    fn size_hint(&self) -> Option<u64> {
        match self.horizon {
            Horizon::Jobs(n) => Some(n - self.emitted.min(n)),
            Horizon::Duration(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SystemPreset;

    fn spec() -> SyntheticSpec {
        SystemPreset::HighThroughput.synthetic_spec(300)
    }

    #[test]
    fn stream_replays_batch_generation_bit_exactly() {
        // Same seed, same arrival parameters as the preset's own daily
        // model: the first n streamed jobs must equal the batch workload.
        let spec = spec();
        let batch = spec.generate(9);
        let mut src = StreamingSynthetic::new(
            spec.clone(),
            ArrivalProcess::Daily {
                peak_to_trough: spec.arrivals.peak_to_trough,
            },
            LoadControl::Rate {
                mean_interarrival_secs: spec.arrivals.mean_interarrival_secs,
            },
            Horizon::Jobs(300),
            9,
        )
        .unwrap();
        assert_eq!(src.size_hint(), Some(300));
        for expect in batch.iter() {
            assert_eq!(&src.next_job().unwrap(), expect);
        }
        assert!(src.next_job().is_none());
        assert!(src.next_job().is_none(), "stays exhausted");
        assert_eq!(src.size_hint(), Some(0));
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let mk = |seed| {
            StreamingSynthetic::new(
                spec(),
                ArrivalProcess::Mmpp {
                    burst_ratio: 1.6,
                    mean_dwell_secs: 1800.0,
                },
                LoadControl::Utilization {
                    target: 0.8,
                    total_nodes: 128,
                },
                Horizon::Jobs(500),
                seed,
            )
            .unwrap()
        };
        let (mut a, mut b, mut c) = (mk(5), mk(5), mk(6));
        let ja: Vec<Job> = std::iter::from_fn(|| a.next_job()).collect();
        let jb: Vec<Job> = std::iter::from_fn(|| b.next_job()).collect();
        let jc: Vec<Job> = std::iter::from_fn(|| c.next_job()).collect();
        assert_eq!(ja, jb, "same seed, same stream");
        assert_ne!(ja, jc, "different seed, different stream");
        assert_eq!(ja.len(), 500);
    }

    #[test]
    fn utilization_target_hits_offered_load() {
        // Stream enough jobs and check the realized offered load against
        // the target on the nominated machine.
        let mut src = StreamingSynthetic::new(
            spec(),
            ArrivalProcess::Poisson,
            LoadControl::Utilization {
                target: 0.85,
                total_nodes: 128,
            },
            Horizon::Jobs(20_000),
            3,
        )
        .unwrap();
        let jobs: Vec<Job> = std::iter::from_fn(|| src.next_job()).collect();
        let w = crate::Workload::from_jobs(jobs);
        let load = w.offered_load(128);
        assert!(
            (load - 0.85).abs() < 0.12,
            "offered load {load} should be near the 0.85 target"
        );
    }

    #[test]
    fn mmpp_preserves_mean_rate_and_bursts() {
        let mean = 50.0;
        let mut src = StreamingSynthetic::new(
            spec(),
            ArrivalProcess::Mmpp {
                burst_ratio: 1.8,
                mean_dwell_secs: 3600.0,
            },
            LoadControl::Rate {
                mean_interarrival_secs: mean,
            },
            Horizon::Jobs(40_000),
            11,
        )
        .unwrap();
        let mut last = 0.0;
        let mut gaps = Vec::new();
        while let Some(j) = src.next_job() {
            let t = j.arrival.as_secs_f64();
            gaps.push(t - last);
            last = t;
        }
        let realized_mean = last / gaps.len() as f64;
        assert!(
            (realized_mean - mean).abs() / mean < 0.05,
            "MMPP long-run mean {realized_mean} should stay near {mean}"
        );
        // Burstiness: the squared coefficient of variation of inter-arrival
        // gaps exceeds 1 (= Poisson) when phases modulate the rate.
        let m: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var: f64 = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (m * m);
        assert!(scv > 1.1, "MMPP gaps should be over-dispersed, scv {scv}");
    }

    #[test]
    fn mmpp_high_burst_ratio_preserves_mean_rate() {
        // Interrupted-Poisson regime: at burst_ratio 4 the quiet phase is
        // silent and three times as long as the burst on average; the
        // long-run mean must still hold, and the gaps must be burstier
        // than at ratio 1.8.
        let mean = 50.0;
        for ratio in [2.0, 4.0] {
            // Short dwells give the estimator plenty of phase cycles; the
            // long-run mean concentrates as cycles accumulate.
            let mut src = StreamingSynthetic::new(
                spec(),
                ArrivalProcess::Mmpp {
                    burst_ratio: ratio,
                    mean_dwell_secs: 600.0,
                },
                LoadControl::Rate {
                    mean_interarrival_secs: mean,
                },
                Horizon::Jobs(40_000),
                11,
            )
            .unwrap();
            let mut last = 0.0;
            let mut n = 0u64;
            while let Some(j) = src.next_job() {
                last = j.arrival.as_secs_f64();
                n += 1;
            }
            let realized_mean = last / n as f64;
            assert!(
                (realized_mean - mean).abs() / mean < 0.08,
                "ratio {ratio}: long-run mean {realized_mean} should stay near {mean}"
            );
        }
    }

    #[test]
    fn duration_horizon_stops_at_cutoff() {
        let mut src = StreamingSynthetic::new(
            spec(),
            ArrivalProcess::Poisson,
            LoadControl::Rate {
                mean_interarrival_secs: 60.0,
            },
            Horizon::Duration(SimDuration::from_hours(24)),
            1,
        )
        .unwrap();
        assert_eq!(src.size_hint(), None);
        let jobs: Vec<Job> = std::iter::from_fn(|| src.next_job()).collect();
        assert!(!jobs.is_empty());
        let cutoff = SimTime::from_secs(86_400);
        assert!(jobs.iter().all(|j| j.arrival <= cutoff));
        // ~1440 arrivals expected in a day at 1/min.
        assert!(jobs.len() > 1000 && jobs.len() < 2000, "{}", jobs.len());
    }

    #[test]
    fn construction_rejects_bad_parameters_with_typed_errors() {
        let ok = |p: ArrivalProcess, l: LoadControl, h: Horizon| {
            StreamingSynthetic::new(spec(), p, l, h, 1)
        };
        let rate = LoadControl::Rate {
            mean_interarrival_secs: 60.0,
        };
        let horizon = Horizon::Jobs(10);

        let err = ok(
            ArrivalProcess::Poisson,
            LoadControl::Rate {
                mean_interarrival_secs: -5.0,
            },
            horizon,
        )
        .unwrap_err();
        assert_eq!(err.model, "load");

        let err = ok(
            ArrivalProcess::Mmpp {
                burst_ratio: 0.5,
                mean_dwell_secs: 100.0,
            },
            rate,
            horizon,
        )
        .unwrap_err();
        assert_eq!(err.model, "arrivals");
        assert!(err.reason.contains("burst_ratio"), "{err}");
        let err = ok(
            ArrivalProcess::Mmpp {
                burst_ratio: f64::INFINITY,
                mean_dwell_secs: 100.0,
            },
            rate,
            horizon,
        )
        .unwrap_err();
        assert!(err.reason.contains("burst_ratio"), "{err}");
        // The old [1, 2) upper bound is lifted: ratios at and above 2 are
        // valid (interrupted-Poisson regime).
        ok(
            ArrivalProcess::Mmpp {
                burst_ratio: 2.0,
                mean_dwell_secs: 100.0,
            },
            rate,
            horizon,
        )
        .unwrap();
        ok(
            ArrivalProcess::Mmpp {
                burst_ratio: 6.0,
                mean_dwell_secs: 100.0,
            },
            rate,
            horizon,
        )
        .unwrap();

        let err = ok(
            ArrivalProcess::Mmpp {
                burst_ratio: 1.5,
                mean_dwell_secs: 0.0,
            },
            rate,
            horizon,
        )
        .unwrap_err();
        assert!(err.reason.contains("mean_dwell_secs"), "{err}");

        let err = ok(
            ArrivalProcess::Daily {
                peak_to_trough: 0.2,
            },
            rate,
            horizon,
        )
        .unwrap_err();
        assert!(err.reason.contains("peak_to_trough"), "{err}");

        let err = ok(ArrivalProcess::Poisson, rate, Horizon::Jobs(0)).unwrap_err();
        assert_eq!(err.model, "horizon");
        let err = ok(
            ArrivalProcess::Poisson,
            rate,
            Horizon::Duration(SimDuration::ZERO),
        )
        .unwrap_err();
        assert_eq!(err.model, "horizon");

        let err = ok(
            ArrivalProcess::Poisson,
            LoadControl::Utilization {
                target: 0.0,
                total_nodes: 128,
            },
            horizon,
        )
        .unwrap_err();
        assert!(err.reason.contains("target"), "{err}");
        let err = ok(
            ArrivalProcess::Poisson,
            LoadControl::Utilization {
                target: 0.8,
                total_nodes: 0,
            },
            horizon,
        )
        .unwrap_err();
        assert!(err.reason.contains("node"), "{err}");
    }

    #[test]
    fn slo_stamping_replays_batch_and_defaults_apply() {
        use crate::slo::SloModel;
        // Spec-model stamping: the stream must replay the batch generator
        // bit-exactly, stamped budgets included.
        let mut spec_m = spec();
        spec_m.slo = Some(SloModel {
            factor_min: 0.5,
            factor_max: 3.0,
        });
        let batch = spec_m.generate(9);
        let mut src = StreamingSynthetic::new(
            spec_m.clone(),
            ArrivalProcess::Daily {
                peak_to_trough: spec_m.arrivals.peak_to_trough,
            },
            LoadControl::Rate {
                mean_interarrival_secs: spec_m.arrivals.mean_interarrival_secs,
            },
            Horizon::Jobs(300),
            9,
        )
        .unwrap();
        for expect in batch.iter() {
            assert_eq!(&src.next_job().unwrap(), expect);
        }

        // Default stamp: fixed objective on every job, no randomness
        // consumed, and the spec model (when present) wins.
        let fixed = Slo::Deadline { deadline_s: 900.0 };
        let mut plain = StreamingSynthetic::new(
            spec(),
            ArrivalProcess::Poisson,
            LoadControl::Rate {
                mean_interarrival_secs: 60.0,
            },
            Horizon::Jobs(20),
            3,
        )
        .unwrap();
        let mut stamped = plain.clone().with_default_slo(fixed).unwrap();
        while let (Some(a), Some(b)) = (plain.next_job(), stamped.next_job()) {
            assert_eq!(a.slo, None);
            assert_eq!(b.slo, Some(fixed));
            assert_eq!(a.arrival, b.arrival, "stamp consumes no randomness");
            assert_eq!(a.runtime, b.runtime);
        }
        assert!(StreamingSynthetic::new(
            spec(),
            ArrivalProcess::Poisson,
            LoadControl::Rate {
                mean_interarrival_secs: 60.0,
            },
            Horizon::Jobs(20),
            3,
        )
        .unwrap()
        .with_default_slo(Slo::Deadline { deadline_s: -1.0 })
        .is_err());
    }

    #[test]
    fn pilot_streams_do_not_perturb_job_streams() {
        // Rate-controlled and utilization-controlled sources with the same
        // realized rate draw identical job fields (arrival times differ
        // only through the rate).
        let spec = spec();
        let mut util = StreamingSynthetic::new(
            spec.clone(),
            ArrivalProcess::Poisson,
            LoadControl::Utilization {
                target: 0.85,
                total_nodes: 128,
            },
            Horizon::Jobs(50),
            7,
        )
        .unwrap();
        let mut rate = StreamingSynthetic::new(
            spec,
            ArrivalProcess::Poisson,
            LoadControl::Rate {
                mean_interarrival_secs: util.mean_interarrival_secs(),
            },
            Horizon::Jobs(50),
            7,
        )
        .unwrap();
        while let (Some(a), Some(b)) = (util.next_job(), rate.next_job()) {
            assert_eq!(a, b);
        }
    }
}
