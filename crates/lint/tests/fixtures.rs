//! Self-test: every rule proves it fires on its fixture — at the exact
//! line — and stays quiet on the known-good file.

use dmhpc_lint::hashcheck::HashPair;
use dmhpc_lint::{lint, Config, Finding, Rule, SourceFile};

/// Load one fixture from `crates/lint/fixtures/`.
fn fixture(name: &str) -> SourceFile {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    SourceFile {
        path: format!("fixtures/{name}"),
        text: std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}")),
    }
}

/// A config that applies every rule to the `fixtures/` prefix.
fn cfg(crate_roots: Vec<String>, hash_pairs: Vec<HashPair>) -> Config {
    Config {
        scan_dirs: vec!["fixtures".to_string()],
        determinism_paths: vec!["fixtures".to_string()],
        panic_paths: vec!["fixtures".to_string()],
        crate_roots,
        hash_pairs,
    }
}

/// Lint one fixture alone and return its `(rule, line)` pairs.
fn rules_and_lines(name: &str, c: &Config) -> Vec<(Rule, u32)> {
    let findings: Vec<Finding> = lint(&[fixture(name)], c);
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn unordered_iter_fires_at_the_hashmap() {
    let got = rules_and_lines("bad_unordered_iter.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::UnorderedIter, 4)]);
}

#[test]
fn wall_clock_fires_at_instant_now() {
    let got = rules_and_lines("bad_wall_clock.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::WallClock, 4)]);
}

#[test]
fn thread_id_fires_at_thread_current() {
    let got = rules_and_lines("bad_thread_id.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::ThreadId, 4)]);
}

#[test]
fn ambient_rng_fires_at_randomstate() {
    let got = rules_and_lines("bad_ambient_rng.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::AmbientRng, 4)]);
}

#[test]
fn panic_rule_fires_on_all_four_forms() {
    let got = rules_and_lines("bad_panic.rs", &cfg(vec![], vec![]));
    assert_eq!(
        got,
        vec![
            (Rule::Panic, 5),  // .unwrap()
            (Rule::Panic, 6),  // .expect()
            (Rule::Panic, 8),  // panic!
            (Rule::Panic, 14), // todo!
        ]
    );
}

#[test]
fn hash_field_fires_at_the_undigested_field() {
    let c = cfg(vec![], vec![HashPair::new("FixtureSpec", "fixture_digest")]);
    let findings = lint(&[fixture("bad_hash_missing_field.rs")], &c);
    assert_eq!(
        findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect::<Vec<_>>(),
        vec![(Rule::HashField, 7)]
    );
    assert!(findings[0].message.contains("warmup_s"));
}

#[test]
fn forbid_unsafe_fires_on_an_unpinned_crate_root() {
    let c = cfg(vec!["fixtures/bad_forbid_unsafe.rs".to_string()], vec![]);
    let got = rules_and_lines("bad_forbid_unsafe.rs", &c);
    assert_eq!(got, vec![(Rule::ForbidUnsafe, 1)]);
}

#[test]
fn bare_allow_is_exactly_one_finding() {
    let got = rules_and_lines("bad_bare_allow.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::BareSuppression, 5)]);
}

#[test]
fn unused_allow_is_exactly_one_finding() {
    let got = rules_and_lines("bad_unused_allow.rs", &cfg(vec![], vec![]));
    assert_eq!(got, vec![(Rule::UnusedSuppression, 4)]);
}

#[test]
fn the_good_file_is_clean_under_every_rule() {
    let c = cfg(
        vec!["fixtures/good.rs".to_string()],
        vec![HashPair::new("GoodSpec", "good_digest")],
    );
    let findings = lint(&[fixture("good.rs")], &c);
    assert_eq!(findings, Vec::new());
}
