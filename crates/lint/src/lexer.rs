//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! lint rules.
//!
//! The lexer splits a source file into identifiers, punctuation, and
//! opaque literal markers, tagging every token with its 1-based line.
//! `//` comments are captured separately (the suppression grammar lives
//! in them); block comments, strings (including raw/byte strings with
//! arbitrary `#` fences), character literals, and lifetimes are
//! recognized so that the words inside them — `"unwrap"` in an error
//! message, `'h'` in a char — can never be mistaken for code. That is
//! the whole point of lexing instead of grepping: a rule match is a
//! match on *code*.
//!
//! The lexer is loss-tolerant by design (it never fails): an input byte
//! it does not understand becomes ordinary punctuation. Lint rules only
//! ever look for specific token patterns, so unknown input is inert.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token payloads. Literals are opaque: rules never inspect their text,
/// only that they are not identifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation character; multi-character operators arrive
    /// as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// A string literal (regular, raw, byte, or byte-raw).
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `//` comment: the line it ends on and its text (everything after
/// the `//`, excluding the newline). Doc comments (`///`, `//!`) arrive
/// with their extra `/` or `!` as the first text character.
#[derive(Debug, Clone, PartialEq)]
pub struct LineComment {
    /// 1-based source line.
    pub line: u32,
    /// Comment text after the leading `//`.
    pub text: String,
}

/// A fully lexed source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// `//` comments, in source order.
    pub comments: Vec<LineComment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize one source file. Infallible — see the module docs.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    // Punctuation, or a stray non-ASCII byte (skipped:
                    // such bytes only legally occur inside literals and
                    // comments, which are handled above).
                    if b.is_ascii() {
                        self.push(TokKind::Punct(b as char));
                    }
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind) {
        self.out.tokens.push(Token {
            line: self.line,
            kind,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(LineComment {
            line: self.line,
            text,
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A regular `"..."` string starting at the current `"`.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    // The escaped byte may itself be a newline (a string
                    // line-continuation) — keep the line count honest.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokKind::Str,
        });
    }

    /// A raw string starting at the current `#` or `"` (the `r`/`br`
    /// prefix has already been consumed): `r"..."`, `r#"..."#`, etc.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        self.pos += 1; // the opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'"' if self.closes_fence(fence) => {
                    self.pos += 1 + fence;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokKind::Str,
        });
    }

    fn closes_fence(&self, fence: usize) -> bool {
        (1..=fence).all(|i| self.peek(i) == Some(b'#'))
    }

    /// `'` begins either a char literal or a lifetime. Heuristic: a run
    /// of identifier characters terminated by another `'` is a char
    /// literal (`'a'`); otherwise it is a lifetime (`'a`, `'static`).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            // Escaped char ('\n', '\\', '\u{..}') — a char literal holds
            // exactly one escape, so consume the `'\` and the escape's
            // determinant byte, then scan plainly to the closing quote
            // (`\u{..}` and `\x..` carry extra payload before it). The
            // determinant must be consumed blind: in `'\\'` it is itself
            // a backslash, and in `'\''` it is a quote.
            Some(b'\\') => {
                self.pos += 3;
                while self.pos < self.src.len() {
                    let b = self.src[self.pos];
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                    if b == b'\n' {
                        // Malformed literal — bail at end of line rather
                        // than silently swallowing the rest of the file.
                        self.line += 1;
                        break;
                    }
                }
                self.push(TokKind::Char);
            }
            Some(b) if is_ident_start(b) => {
                let mut end = self.pos + 2;
                while end < self.src.len() && is_ident_continue(self.src[end]) {
                    end += 1;
                }
                if self.src.get(end) == Some(&b'\'') {
                    self.push(TokKind::Char);
                    self.pos = end + 1;
                } else {
                    self.push(TokKind::Lifetime);
                    self.pos = end;
                }
            }
            // Any other char literal ('0', '♥', '(' ...): scan to the
            // closing quote on the same line.
            _ => {
                self.pos += 1;
                while self.pos < self.src.len() {
                    let b = self.src[self.pos];
                    self.pos += 1;
                    if b == b'\'' || b == b'\n' {
                        if b == b'\n' {
                            self.line += 1;
                        }
                        break;
                    }
                }
                self.push(TokKind::Char);
            }
        }
    }

    fn number(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // A fractional part, but never a `..` range or a method
                // call on a literal.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // String-literal prefixes and raw identifiers.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br", Some(b'#')) if self.peek(1).is_some_and(|b| b == b'"' || b == b'#') => {
                return self.raw_string();
            }
            ("r" | "br", Some(b'"')) => return self.raw_string(),
            ("b", Some(b'"')) => return self.string(),
            ("b", Some(b'\'')) => {
                self.pos += 1;
                return self.char_or_lifetime();
            }
            ("r", Some(b'#')) if self.peek(1).is_some_and(is_ident_start) => {
                // Raw identifier r#ident: emit the identifier itself.
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Ident(raw));
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn words_in_strings_and_comments_are_not_code() {
        let src = r##"
            // unwrap in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now and .unwrap()";
            let r = r#"SystemTime "quoted" HashSet"#;
            let c = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for bad in ["unwrap", "HashMap", "Instant", "SystemTime", "HashSet"] {
            assert!(!ids.contains(&bad.to_string()), "leaked {bad} from literal");
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn lines_are_tracked_through_multiline_literals() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.ident() == Some("b"));
        assert_eq!(b.map(|t| t.line), Some(3));
    }

    #[test]
    fn comments_carry_text_and_line() {
        let lexed = lex("x();\n// lint: allow(panic) — fine\ny();");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(panic)"));
    }

    #[test]
    fn backslash_and_quote_char_literals_do_not_desync() {
        // `'\\'` and `'\''` end at their own closing quote; the lexer
        // must not scan past it into the following lines (a desync here
        // silently drops newlines and shifts every later finding).
        let src = "match c {\n    '\\\\' => a(),\n    '\\'' => b(),\n    '\"' => q(),\n}\nfn after() {}\n";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.ident() == Some("after"));
        assert_eq!(after.map(|t| t.line), Some(6));
        let names: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(names.contains(&"a") && names.contains(&"b") && names.contains(&"q"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let toks = lex("0..n; 1.0_f64; 2.max(3);").tokens;
        let ids = toks.iter().filter_map(|t| t.ident()).collect::<Vec<_>>();
        assert!(ids.contains(&"n"));
        assert!(ids.contains(&"max"));
    }
}
