//! Per-file scanning: `#[cfg(test)]` exclusion and the suppression
//! grammar.
//!
//! The rules only apply to *shipping* code, so everything under a
//! `#[cfg(test)]` attribute — a test module, a test-only function or
//! `use` — is dropped from the token stream before any rule looks at
//! it. Detection is token-level: an attribute whose `cfg(...)` argument
//! mentions `test` (and is not a `not(...)` inversion) swallows the
//! item it decorates, tracked by brace/paren/bracket depth.
//!
//! Suppressions are the audit trail of every deliberate rule violation:
//!
//! ```text
//! // lint: allow(<rule>) — <justification>
//! ```
//!
//! either trailing on the offending line or standing alone on the line
//! directly above it (then it applies to the next code line). The
//! justification is **mandatory** — a bare `lint: allow(rule)` is itself
//! a finding (`bare-suppression`), as is an allow that matches nothing
//! (`unused-suppression`): stale annotations rot into misdocumentation
//! and are rejected the same way bare ones are.

use crate::lexer::{lex, LineComment, Token};

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule name inside `allow(...)`, verbatim.
    pub rule: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line that findings must be on for this allow to apply.
    pub target: u32,
    /// True when a non-empty justification follows the `allow(...)`.
    pub justified: bool,
    /// Set during matching: at least one finding hit this allow.
    pub used: bool,
    /// True when the comment started with `lint:` but did not parse as
    /// `allow(<rule>)` — always reported, never applied.
    pub malformed: bool,
}

/// One scanned source file: non-test tokens plus its suppressions.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Tokens outside `#[cfg(test)]` regions, in source order.
    pub tokens: Vec<Token>,
    /// Parsed suppression comments outside `#[cfg(test)]` regions.
    pub suppressions: Vec<Suppression>,
}

/// Lex and scan one file.
pub fn scan(path: &str, text: &str) -> ScannedFile {
    let lexed = lex(text);
    let keep = non_test_mask(&lexed.tokens);
    let tokens: Vec<Token> = lexed
        .tokens
        .iter()
        .zip(&keep)
        .filter(|(_, k)| **k)
        .map(|(t, _)| t.clone())
        .collect();
    // Line spans of the dropped regions, to ignore comments inside them.
    let test_spans = dropped_line_spans(&lexed.tokens, &keep);
    let code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    let suppressions = lexed
        .comments
        .iter()
        .filter(|c| {
            !test_spans
                .iter()
                .any(|&(lo, hi)| c.line >= lo && c.line <= hi)
        })
        .filter_map(|c| parse_suppression(c, &code_lines))
        .collect();
    ScannedFile {
        path: path.to_string(),
        tokens,
        suppressions,
    }
}

/// For each token, whether it survives `#[cfg(test)]` exclusion.
fn non_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut keep = vec![true; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_region_end(tokens, i) {
            for k in keep.iter_mut().take(end).skip(i) {
                *k = false;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    keep
}

/// If a `#[cfg(test)]`-style attribute starts at `i`, return the index
/// one past the item it decorates.
fn test_region_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let attr_close = matching(tokens, i + 1)?;
    if !cfg_names_test(&tokens[i + 2..attr_close]) {
        return None;
    }
    // Skip any further attributes between the cfg and the item.
    let mut j = attr_close + 1;
    while j < tokens.len() && tokens[j].is_punct('#') {
        if tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
            j = matching(tokens, j + 1)? + 1;
        } else {
            break;
        }
    }
    // The item ends at the close of its first top-level block, or at a
    // `;` before any block opens (`#[cfg(test)] use ...;`).
    let mut depth = 0usize;
    while j < tokens.len() {
        match &tokens[j].kind {
            crate::lexer::TokKind::Punct('{' | '(' | '[') => depth += 1,
            crate::lexer::TokKind::Punct(c @ ('}' | ')' | ']')) => {
                let closes_block = *c == '}';
                depth = depth.saturating_sub(1);
                if depth == 0 && closes_block {
                    return Some(j + 1);
                }
            }
            crate::lexer::TokKind::Punct(';') if depth == 0 => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    Some(tokens.len())
}

/// True when an attribute body is `cfg(...)` whose argument mentions
/// `test` without a `not(...)` inversion.
fn cfg_names_test(attr: &[Token]) -> bool {
    if attr.first().and_then(Token::ident) != Some("cfg") {
        return false;
    }
    let mut saw_test = false;
    let mut saw_not = false;
    for t in attr {
        match t.ident() {
            Some("test") => saw_test = true,
            Some("not") => saw_not = true,
            _ => {}
        }
    }
    saw_test && !saw_not
}

/// Index of the punctuation closing the bracket at `open` (any of
/// `{ ( [`), counting all bracket kinds together.
fn matching(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            crate::lexer::TokKind::Punct('{' | '(' | '[') => depth += 1,
            crate::lexer::TokKind::Punct('}' | ')' | ']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line spans `(first, last)` covered by dropped (test) tokens.
fn dropped_line_spans(tokens: &[Token], keep: &[bool]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut open: Option<(u32, u32)> = None;
    for (t, k) in tokens.iter().zip(keep) {
        if *k {
            if let Some(span) = open.take() {
                spans.push(span);
            }
        } else {
            open = Some(match open {
                None => (t.line, t.line),
                Some((lo, _)) => (lo, t.line),
            });
        }
    }
    if let Some(span) = open {
        spans.push(span);
    }
    spans
}

/// Parse one comment as a suppression, if it is `lint:`-prefixed.
fn parse_suppression(c: &LineComment, code_lines: &[u32]) -> Option<Suppression> {
    let text = c.text.trim();
    let rest = text.strip_prefix("lint:")?.trim_start();
    let trailing_code = code_lines.contains(&c.line);
    let target = if trailing_code {
        c.line
    } else {
        // Standalone comment: applies to the next line carrying code.
        code_lines
            .iter()
            .copied()
            .filter(|&l| l > c.line)
            .min()
            .unwrap_or(c.line)
    };
    let malformed = Suppression {
        rule: String::new(),
        line: c.line,
        target,
        justified: false,
        used: false,
        malformed: true,
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(malformed);
    };
    let Some(close) = args.find(')') else {
        return Some(malformed);
    };
    let rule = args[..close].trim().to_string();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return Some(malformed);
    }
    // Justification: a dash separator (`—`, `–`, `-`, `:`) followed by
    // actual words. Anything less is a bare suppression.
    let tail = args[close + 1..].trim_start();
    let words = tail.trim_start_matches(['—', '–', '-', ':', ' ']);
    let justified = words.len() < tail.len() && !words.trim().is_empty();
    Some(Suppression {
        rule,
        line: c.line,
        target,
        justified,
        used: false,
        malformed: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(sf: &ScannedFile) -> Vec<&str> {
        sf.tokens.iter().filter_map(Token::ident).collect()
    }

    #[test]
    fn cfg_test_modules_are_dropped() {
        let sf = scan(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n",
        );
        let ids = idents(&sf);
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"also_live"));
        assert!(!ids.contains(&"unwrap"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let sf = scan("x.rs", "#[cfg(not(test))]\nfn shipping() { x.unwrap(); }\n");
        assert!(idents(&sf).contains(&"unwrap"));
    }

    #[test]
    fn cfg_test_fn_and_use_are_dropped() {
        let sf = scan(
            "x.rs",
            "#[cfg(test)]\nuse helper::thing;\n#[cfg(test)]\n#[allow(dead_code)]\nfn probe() {}\nfn live() {}\n",
        );
        let ids = idents(&sf);
        assert!(!ids.contains(&"thing"));
        assert!(!ids.contains(&"probe"));
        assert!(ids.contains(&"live"));
    }

    #[test]
    fn trailing_and_standalone_suppressions_target_correct_lines() {
        let sf = scan(
            "x.rs",
            "fn f() {\n    // lint: allow(panic) — checked above\n    x.unwrap();\n    y.unwrap(); // lint: allow(panic) — infallible\n}\n",
        );
        assert_eq!(sf.suppressions.len(), 2);
        assert_eq!(sf.suppressions[0].target, 3);
        assert_eq!(sf.suppressions[1].target, 4);
        assert!(sf.suppressions.iter().all(|s| s.justified));
    }

    #[test]
    fn bare_and_malformed_suppressions_are_flagged() {
        let sf = scan(
            "x.rs",
            "x.unwrap(); // lint: allow(panic)\ny(); // lint: alow(panic) — typo\n",
        );
        assert_eq!(sf.suppressions.len(), 2);
        assert!(!sf.suppressions[0].justified);
        assert!(!sf.suppressions[0].malformed);
        assert!(sf.suppressions[1].malformed);
    }

    #[test]
    fn suppressions_inside_test_modules_are_ignored() {
        let sf = scan(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    // lint: allow(panic) — test-only\n    fn t() {}\n}\n",
        );
        assert!(sf.suppressions.is_empty());
    }
}
