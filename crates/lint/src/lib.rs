//! `dmhpc-lint`: the workspace's determinism & hash-discipline auditor.
//!
//! Every guarantee this repo sells — byte-identical warm-cache replays,
//! 1-vs-N-thread and heap-vs-calendar trace equality, hash-neutral
//! absence values for the fault/service/fleet/SLO axes — rests on
//! conventions that compilers do not check: no unordered iteration in
//! result-affecting paths, no wall clocks or ambient randomness, every
//! result-determining field folded into the cell hash, no panics in
//! library code. The golden-hash tests catch violations *after* they
//! corrupt a result; this crate catches them at the token level,
//! before.
//!
//! It is a dependency-free, hand-rolled tokenizer ([`lexer`]) plus a
//! rule engine — the same in-tree idiom as `metrics::json` and
//! `criterion-shim`. Rules are named and individually suppressible with
//! an audited grammar (see [`scan`]):
//!
//! | rule | what it flags |
//! |------|----------------|
//! | `unordered-iter`  | `HashMap`/`HashSet` in result-affecting code |
//! | `wall-clock`      | `Instant::now` / `SystemTime::now` |
//! | `thread-id`       | `thread::current()` identity |
//! | `ambient-rng`     | randomness that is not the seeded `Pcg64` |
//! | `panic`           | `unwrap()`/`expect()`/`panic!`/`todo!` in library code |
//! | `hash-field`      | a spec field missing from its digest fn ([`hashcheck`]) |
//! | `forbid-unsafe`   | a crate root without `#![forbid(unsafe_code)]` |
//! | `bare-suppression`   | an `allow` without a justification (not suppressible) |
//! | `unused-suppression` | an `allow` matching no finding (not suppressible) |
//!
//! Ships three ways: `cargo run -p dmhpc-lint` (file:line diagnostics,
//! non-zero exit on findings), the workspace integration test
//! `tests/lint.rs` (so plain `cargo test` enforces it), and a CI step.

#![forbid(unsafe_code)]

pub mod hashcheck;
pub mod lexer;
pub mod scan;

use hashcheck::HashPair;
use scan::ScannedFile;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The named rules. Every finding carries one; every suppression names
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a result-affecting path: their iteration
    /// order is seeded per process, so anything downstream of it is
    /// nondeterministic. Use `BTreeMap`/`BTreeSet` or justify the use as
    /// a pure point lookup.
    UnorderedIter,
    /// `Instant::now()` / `SystemTime::now()`: wall clocks leak host
    /// timing into results.
    WallClock,
    /// `thread::current()`: thread identity varies run to run.
    ThreadId,
    /// Randomness that is not the workspace's seeded `Pcg64` streams
    /// (`RandomState`, `DefaultHasher`, `thread_rng`, ...).
    AmbientRng,
    /// `unwrap()`/`expect()`/`panic!`/`todo!` in library code outside
    /// tests: the workspace convention is fallible construction with
    /// typed errors; surviving panics are documented invariants.
    Panic,
    /// A field of a hash-relevant spec type not referenced in its digest
    /// function (see [`hashcheck`]).
    HashField,
    /// A crate root missing `#![forbid(unsafe_code)]` — the workspace is
    /// pure-safe and pinned so.
    ForbidUnsafe,
    /// A suppression without a justification, naming an unknown rule, or
    /// malformed. Not itself suppressible.
    BareSuppression,
    /// A suppression that matched no finding — stale annotations are
    /// misdocumentation. Not itself suppressible.
    UnusedSuppression,
}

impl Rule {
    /// The stable name used in diagnostics and `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::ThreadId => "thread-id",
            Rule::AmbientRng => "ambient-rng",
            Rule::Panic => "panic",
            Rule::HashField => "hash-field",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::BareSuppression => "bare-suppression",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// Inverse of [`Rule::name`] over the suppressible rules.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unordered-iter" => Some(Rule::UnorderedIter),
            "wall-clock" => Some(Rule::WallClock),
            "thread-id" => Some(Rule::ThreadId),
            "ambient-rng" => Some(Rule::AmbientRng),
            "panic" => Some(Rule::Panic),
            "hash-field" => Some(Rule::HashField),
            "forbid-unsafe" => Some(Rule::ForbidUnsafe),
            _ => None,
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for configuration-level findings).
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// What to lint and how. [`Config::workspace`] is the repo's canonical
/// configuration; fixtures and tests build their own.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (path prefixes) holding sources to scan at all.
    pub scan_dirs: Vec<String>,
    /// Path prefixes where the determinism rules (`unordered-iter`,
    /// `wall-clock`, `thread-id`, `ambient-rng`) apply — the
    /// result-affecting crates.
    pub determinism_paths: Vec<String>,
    /// Path prefixes where the `panic` rule applies — library code.
    pub panic_paths: Vec<String>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub crate_roots: Vec<String>,
    /// Registered (spec type, digest fn) obligations for `hash-field`.
    pub hash_pairs: Vec<HashPair>,
}

impl Config {
    /// The canonical workspace configuration.
    ///
    /// Scope choices, deliberately:
    /// * determinism rules cover every crate whose code can affect a
    ///   result or output ordering — `des`, `platform`, `sched`,
    ///   `workload`, `metrics`, and all of `sim` (engine, federation,
    ///   experiment, observe);
    /// * the `panic` rule covers the same plus the facade and this crate
    ///   itself (the lint holds itself to the convention);
    /// * `crates/bench` and `crates/criterion-shim` are bench harness
    ///   code — wall clocks and panics are their job — and are excluded.
    pub fn workspace() -> Config {
        let product = [
            "crates/des/src",
            "crates/metrics/src",
            "crates/platform/src",
            "crates/sched/src",
            "crates/workload/src",
            "crates/sim/src",
        ];
        let mut scan_dirs: Vec<String> = product.iter().map(|s| s.to_string()).collect();
        scan_dirs.push("src".to_string());
        scan_dirs.push("crates/lint/src".to_string());
        let mut panic_paths = scan_dirs.clone();
        panic_paths.sort();
        Config {
            scan_dirs,
            determinism_paths: product.iter().map(|s| s.to_string()).collect(),
            panic_paths,
            crate_roots: [
                "src/lib.rs",
                "crates/des/src/lib.rs",
                "crates/metrics/src/lib.rs",
                "crates/platform/src/lib.rs",
                "crates/sched/src/lib.rs",
                "crates/workload/src/lib.rs",
                "crates/sim/src/lib.rs",
                "crates/lint/src/lib.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            hash_pairs: Self::workspace_hash_pairs(),
        }
    }

    /// Every hash-relevant spec type, paired with the digest function
    /// obliged to fold it. **Adding a result-determining axis or field?
    /// Register it here** — that is what turns "forgot to digest it"
    /// into a lint error instead of a cache-corruption incident.
    fn workspace_hash_pairs() -> Vec<HashPair> {
        [
            // The cell hash proper (crates/sim/src/experiment/cache.rs).
            ("FaultSpec", "cell_hash"),
            ("FaultGenerator", "cell_hash"),
            ("InterruptPolicy", "cell_hash"),
            ("FaultAction", "action_tag"),
            ("ServiceSpec", "cell_hash"),
            ("ServiceLoad", "cell_hash"),
            ("ArrivalProcess", "cell_hash"),
            ("FleetSpec", "cell_hash"),
            ("SiteSpec", "cell_hash"),
            // Shared sub-digests.
            ("ClusterSpec", "hash_cluster"),
            ("NodeSpec", "hash_cluster"),
            ("PoolTopology", "hash_cluster"),
            ("SchedulerConfig", "hash_scheduler"),
            ("OrderPolicy", "hash_scheduler"),
            ("BackfillPolicy", "hash_scheduler"),
            ("MemoryPolicy", "hash_scheduler"),
            ("SlowdownModel", "hash_scheduler"),
            ("AdmissionPolicy", "hash_scheduler"),
            ("PreemptPolicy", "hash_scheduler"),
            // The workload digest.
            ("Job", "workload_digest"),
            ("Slo", "workload_digest"),
            ("SloModel", "workload_digest"),
        ]
        .iter()
        .map(|(s, d)| HashPair::new(s, d))
        .collect()
    }

    fn path_in(path: &str, prefixes: &[String]) -> bool {
        prefixes
            .iter()
            .any(|p| p.is_empty() || path == p || path.starts_with(&format!("{p}/")))
    }
}

/// One source file handed to the engine. Paths are workspace-relative
/// with `/` separators; the text is held in memory so tests can lint
/// *edited* sources (e.g. to prove a deleted digest fold is caught).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// Read every `.rs` file under the config's scan dirs.
pub fn collect_sources(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for dir in &cfg.scan_dirs {
        let mut stack = vec![root.join(dir)];
        while let Some(d) = stack.pop() {
            if !d.is_dir() {
                continue;
            }
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
                .map(|e| e.map(|e| e.path()))
                .collect::<io::Result<_>>()?;
            entries.sort();
            for p in entries {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    files.push(SourceFile {
                        path: rel,
                        text: std::fs::read_to_string(&p)?,
                    });
                }
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Run every rule over the sources. Returns all surviving findings,
/// sorted by (path, line, rule) — deterministically, of course.
pub fn lint(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut scanned: Vec<ScannedFile> =
        files.iter().map(|f| scan::scan(&f.path, &f.text)).collect();
    let mut findings = Vec::new();
    for sf in &scanned {
        if Config::path_in(&sf.path, &cfg.determinism_paths) {
            determinism_rules(sf, &mut findings);
        }
        if Config::path_in(&sf.path, &cfg.panic_paths) {
            panic_rule(sf, &mut findings);
        }
        if cfg.crate_roots.contains(&sf.path) {
            forbid_unsafe_rule(sf, &mut findings);
        }
    }
    hashcheck::check(&scanned, &cfg.hash_pairs, &mut findings);
    resolve_suppressions(&mut scanned, findings)
}

/// Apply suppressions to raw findings and report suppression hygiene.
fn resolve_suppressions(scanned: &mut [ScannedFile], raw: Vec<Finding>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in raw {
        let mut suppressed = false;
        if let Some(sf) = scanned.iter_mut().find(|sf| sf.path == f.path) {
            for s in sf.suppressions.iter_mut() {
                if !s.malformed && s.target == f.line && s.rule == f.rule.name() {
                    s.used = true;
                    suppressed = s.justified;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    for sf in scanned.iter() {
        let path = sf.path.as_str();
        for s in &sf.suppressions {
            if s.malformed {
                findings.push(Finding {
                    path: path.to_string(),
                    line: s.line,
                    rule: Rule::BareSuppression,
                    message: "malformed suppression — the grammar is \
                              `// lint: allow(<rule>) — <justification>`"
                        .to_string(),
                });
            } else if Rule::from_name(&s.rule).is_none() {
                findings.push(Finding {
                    path: path.to_string(),
                    line: s.line,
                    rule: Rule::BareSuppression,
                    message: format!("suppression names unknown rule `{}`", s.rule),
                });
            } else if !s.justified {
                findings.push(Finding {
                    path: path.to_string(),
                    line: s.line,
                    rule: Rule::BareSuppression,
                    message: format!(
                        "bare `allow({})` — a suppression must say *why*: \
                         `// lint: allow({}) — <justification>`",
                        s.rule, s.rule
                    ),
                });
            } else if !s.used {
                findings.push(Finding {
                    path: path.to_string(),
                    line: s.line,
                    rule: Rule::UnusedSuppression,
                    message: format!(
                        "`allow({})` matched no finding on line {} — remove the stale annotation",
                        s.rule, s.target
                    ),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// The token-pattern determinism rules.
fn determinism_rules(sf: &ScannedFile, findings: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    let mut push = |line: u32, rule: Rule, message: String| {
        findings.push(Finding {
            path: sf.path.clone(),
            line,
            rule,
            message,
        });
    };
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let path_follows = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
        match id {
            "HashMap" | "HashSet" => push(
                t.line,
                Rule::UnorderedIter,
                format!(
                    "`{id}` in a result-affecting path — iteration order is per-process \
                     random; use `BTree{}` or justify a pure point lookup",
                    &id[4..]
                ),
            ),
            "Instant" | "SystemTime"
                if path_follows && toks.get(i + 3).and_then(|n| n.ident()) == Some("now") =>
            {
                push(
                    t.line,
                    Rule::WallClock,
                    format!(
                        "`{id}::now()` leaks host wall-clock time into a result-affecting path"
                    ),
                )
            }
            "thread"
                if path_follows && toks.get(i + 3).and_then(|n| n.ident()) == Some("current") =>
            {
                push(
                    t.line,
                    Rule::ThreadId,
                    "`thread::current()` identity varies run to run".to_string(),
                )
            }
            "RandomState" | "DefaultHasher" | "thread_rng" | "from_entropy" | "getrandom" => push(
                t.line,
                Rule::AmbientRng,
                format!(
                    "`{id}` is ambient (per-process) randomness — use the seeded `Pcg64` streams"
                ),
            ),
            _ => {}
        }
    }
}

/// The panic-discipline rule.
fn panic_rule(sf: &ScannedFile, findings: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let flagged = match id {
            "unwrap" | "expect" => i > 0 && toks[i - 1].is_punct('.'),
            "panic" | "todo" | "unimplemented" => toks.get(i + 1).is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if flagged {
            let call = match id {
                "unwrap" | "expect" => format!(".{id}()"),
                _ => format!("{id}!"),
            };
            findings.push(Finding {
                path: sf.path.clone(),
                line: t.line,
                rule: Rule::Panic,
                message: format!(
                    "`{call}` in library code — propagate a typed error, or document the \
                     invariant with `lint: allow(panic)`"
                ),
            });
        }
    }
}

/// The crate-root `#![forbid(unsafe_code)]` rule.
fn forbid_unsafe_rule(sf: &ScannedFile, findings: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    let has = toks.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].ident() == Some("forbid")
            && w[4].is_punct('(')
            && w[5].ident() == Some("unsafe_code")
            && w[6].is_punct(')')
    });
    if !has {
        findings.push(Finding {
            path: sf.path.clone(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root lacks `#![forbid(unsafe_code)]` — the workspace is \
                      pure-safe and stays that way"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<Finding> {
        let cfg = Config {
            scan_dirs: vec![String::new()],
            determinism_paths: vec![String::new()],
            panic_paths: vec![String::new()],
            crate_roots: vec![],
            hash_pairs: vec![],
        };
        lint(
            &[SourceFile {
                path: path.to_string(),
                text: text.to_string(),
            }],
            &cfg,
        )
    }

    #[test]
    fn justified_allow_suppresses_and_is_used() {
        let f = one(
            "a.rs",
            "fn f() -> Option<u32> {\n    // lint: allow(unordered-iter) — point lookup only, never iterated\n    let m = std::collections::HashMap::from([(1u32, 2u32)]);\n    m.get(&1).copied()\n}\n",
        );
        assert_eq!(f, Vec::new());
    }

    #[test]
    fn bare_allow_reports_both_the_finding_and_the_bareness() {
        let f = one(
            "a.rs",
            "fn f() {\n    x.unwrap(); // lint: allow(panic)\n}\n",
        );
        let rules: Vec<Rule> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&Rule::Panic));
        assert!(rules.contains(&Rule::BareSuppression));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let f = one(
            "a.rs",
            "// lint: allow(panic) — it cannot fail\nfn f() -> u32 {\n    1\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnusedSuppression);
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let f = one(
            "a.rs",
            "use std::collections::{HashMap, HashSet};\nfn g() { x.unwrap(); }\n",
        );
        let mut sorted = f.clone();
        sorted.sort();
        assert_eq!(f, sorted);
        assert_eq!(f.len(), 3);
    }
}
