//! `cargo run -p dmhpc-lint [--root <dir>]` — lint the workspace and
//! exit non-zero on findings.
//!
//! The root defaults to the workspace this binary was built from (two
//! levels above this crate's manifest), so it runs correctly from any
//! working directory — in CI, from `cargo run`, or by hand.

#![forbid(unsafe_code)]

use dmhpc_lint::{collect_sources, lint, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: dmhpc-lint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dmhpc-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let cfg = Config::workspace();
    let files = match collect_sources(&root, &cfg) {
        Ok(files) => files,
        Err(e) => {
            eprintln!(
                "dmhpc-lint: cannot read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "dmhpc-lint: no sources found under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }
    let findings = lint(&files, &cfg);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("dmhpc-lint: clean ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "dmhpc-lint: {} finding(s) in {} files",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}
