//! The hash-discipline rule: every field of a hash-relevant spec type
//! must be referenced inside its digest function.
//!
//! The experiment cache addresses results by a content hash of
//! everything that determines them (`cell_hash`, `hash_scheduler`,
//! `workload_digest`, ...). The failure mode this rule exists for:
//! someone adds a field to `ServiceSpec`, forgets to fold it into the
//! digest, and two *different* cells now share a hash — a warm cache
//! silently replays the wrong result. That is a cache-corruption
//! incident; this makes it a lint error instead.
//!
//! The check is deliberately name-based and conservative: the lint
//! extracts the named fields of each registered struct/enum (tests
//! excluded) and demands that every field identifier appear somewhere in
//! the body of the registered digest function. It cannot prove the field
//! is folded *correctly* — that is what the golden-hash tests are for —
//! but it catches the "forgot entirely" drift, which is the dangerous
//! one, at the moment the field is added. Deliberately-excluded fields
//! (presentation-only labels, models that act through per-job stamps)
//! carry a `// lint: allow(hash-field) — why` on their declaration line,
//! so every exclusion is visible and justified in the type definition
//! itself.

use crate::lexer::{TokKind, Token};
use crate::scan::ScannedFile;
use crate::{Finding, Rule};

/// One registered (spec type, digest function) obligation.
#[derive(Debug, Clone)]
pub struct HashPair {
    /// Struct or enum name, e.g. `ServiceSpec`.
    pub spec: String,
    /// Function whose body must reference every field, e.g. `cell_hash`.
    pub digest: String,
}

impl HashPair {
    /// Convenience constructor.
    pub fn new(spec: &str, digest: &str) -> Self {
        HashPair {
            spec: spec.to_string(),
            digest: digest.to_string(),
        }
    }
}

/// A named field of a scanned type.
struct Field {
    name: String,
    line: u32,
}

/// Where a type or function was found.
struct Located<T> {
    path: String,
    item: T,
}

/// Run the rule over all scanned files, appending findings.
pub fn check(files: &[ScannedFile], pairs: &[HashPair], findings: &mut Vec<Finding>) {
    for pair in pairs {
        let spec = files.iter().find_map(|sf| {
            extract_fields(&sf.tokens, &pair.spec).map(|fields| Located {
                path: sf.path.clone(),
                item: fields,
            })
        });
        let digest = files.iter().find_map(|sf| {
            fn_body_idents(&sf.tokens, &pair.digest).map(|idents| Located {
                path: sf.path.clone(),
                item: idents,
            })
        });
        let (spec, digest) = match (spec, digest) {
            (Some(s), Some(d)) => (s, d),
            (s, d) => {
                let missing = match (&s, &d) {
                    (None, None) => format!("type `{}` and fn `{}`", pair.spec, pair.digest),
                    (None, _) => format!("type `{}`", pair.spec),
                    _ => format!("fn `{}`", pair.digest),
                };
                findings.push(Finding {
                    rule: Rule::HashField,
                    path: "(lint config)".to_string(),
                    line: 0,
                    message: format!(
                        "registered hash pair `{}` → `{}` is stale: {missing} not found in the scanned sources",
                        pair.spec, pair.digest
                    ),
                });
                continue;
            }
        };
        for field in &spec.item {
            if !digest.item.contains(&field.name) {
                findings.push(Finding {
                    rule: Rule::HashField,
                    path: spec.path.clone(),
                    line: field.line,
                    message: format!(
                        "field `{}` of `{}` is not referenced in digest fn `{}` ({}) — fold it into the hash or justify the exclusion",
                        field.name, pair.spec, pair.digest, digest.path
                    ),
                });
            }
        }
    }
}

/// Extract the named fields of `struct name { ... }` or the named
/// variant-payload fields of `enum name { ... }`. Returns `None` when
/// the type is not defined in this token stream.
fn extract_fields(tokens: &[Token], name: &str) -> Option<Vec<Field>> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        let kw = tokens[i].ident();
        let is_struct = kw == Some("struct");
        let is_enum = kw == Some("enum");
        if (is_struct || is_enum) && tokens[i + 1].ident() == Some(name) {
            // Find the body's opening brace (skipping generics, which
            // contain no braces). `struct Name;` / tuple structs have no
            // named fields — treat as empty.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_punct('(') {
                    return Some(Vec::new());
                }
                j += 1;
            }
            if j >= tokens.len() || tokens[j].is_punct(';') {
                return Some(Vec::new());
            }
            let field_depth = if is_struct { 1 } else { 2 };
            return Some(fields_in_body(tokens, j, field_depth));
        }
        i += 1;
    }
    None
}

/// Collect identifiers at exactly `want_depth` inside the body opened at
/// `open` that are followed by a single `:` (a field declaration), where
/// depth counts all bracket kinds from the body's own brace.
fn fields_in_body(tokens: &[Token], open: usize, want_depth: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Punct('{' | '(' | '[') => depth += 1,
            TokKind::Punct('}' | ')' | ']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident(id) if depth == want_depth => {
                let single_colon = tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'));
                if single_colon {
                    fields.push(Field {
                        name: id.clone(),
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    fields
}

/// The set of identifiers inside the body of `fn name(...) { ... }`, or
/// `None` when the function is not defined in this token stream.
fn fn_body_idents(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].ident() == Some("fn") && tokens[i + 1].ident() == Some(name) {
            // The body is the first `{` at zero bracket depth after the
            // signature (the parameter list raises depth).
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('(' | '[') => depth += 1,
                    TokKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
                    TokKind::Punct('{') if depth == 0 => break,
                    TokKind::Punct(';') if depth == 0 => return Some(Vec::new()),
                    _ => {}
                }
                j += 1;
            }
            let mut idents = Vec::new();
            let mut body_depth = 0usize;
            for t in tokens.iter().skip(j) {
                match &t.kind {
                    TokKind::Punct('{' | '(' | '[') => body_depth += 1,
                    TokKind::Punct('}' | ')' | ']') => {
                        body_depth = body_depth.saturating_sub(1);
                        if body_depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(id) => idents.push(id.clone()),
                    _ => {}
                }
            }
            return Some(idents);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(src: &str, pairs: &[HashPair]) -> Vec<Finding> {
        let mut findings = Vec::new();
        check(&[scan("x.rs", src)], pairs, &mut findings);
        findings
    }

    #[test]
    fn missing_field_is_reported_at_its_declaration() {
        let src = "pub struct Spec {\n    pub a: u64,\n    pub warmup_s: u64,\n}\nfn digest(s: &Spec) -> u64 {\n    s.a\n}\n";
        let f = run(src, &[HashPair::new("Spec", "digest")]);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, Rule::HashField));
        assert!(f[0].message.contains("warmup_s"));
    }

    #[test]
    fn complete_digests_and_enum_payloads_pass() {
        let src = "pub enum P {\n    A,\n    B { knob: f64 },\n}\npub struct Spec {\n    pub p: P,\n    pub list: Vec<(u64, String)>,\n}\nfn digest(s: &Spec) -> u64 {\n    let _ = &s.list;\n    match s.p { P::A => 1, P::B { knob } => knob as u64 }\n}\n";
        let pairs = [
            HashPair::new("Spec", "digest"),
            HashPair::new("P", "digest"),
        ];
        assert!(run(src, &pairs).is_empty());
    }

    #[test]
    fn stale_pair_registration_is_a_finding() {
        let f = run("fn other() {}", &[HashPair::new("Gone", "other")]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`Gone`"));
    }

    #[test]
    fn path_types_in_fields_are_not_fields() {
        // `std::collections` inside a field type must not register
        // `std` as a field name.
        let src = "pub struct Spec {\n    pub m: std::vec::Vec<u64>,\n}\nfn digest(s: &Spec) -> usize {\n    s.m.len()\n}\n";
        assert!(run(src, &[HashPair::new("Spec", "digest")]).is_empty());
    }
}
