// Fixture: `warmup_s` (line 7) is a result-determining field that the
// registered digest fn forgets to fold — the exact drift the rule
// exists to catch.

pub struct FixtureSpec {
    pub rate: u64,
    pub warmup_s: u64,
}

pub fn fixture_digest(s: &FixtureSpec) -> u64 {
    s.rate.wrapping_mul(0x100000001b3)
}
