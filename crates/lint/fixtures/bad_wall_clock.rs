// Fixture: wall-clock read in a result-affecting path (line 4).

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
