// Fixture: a justified suppression that matches no finding (line 4).

pub fn double(x: u32) -> u32 {
    // lint: allow(panic) — this line cannot actually panic
    x.saturating_mul(2)
}
