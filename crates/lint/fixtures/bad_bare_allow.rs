// Fixture: a suppression with no justification (line 5). Bareness is
// reported before staleness, so this is exactly one finding.

pub fn double(x: u32) -> u32 {
    x.saturating_mul(2) // lint: allow(panic)
}
