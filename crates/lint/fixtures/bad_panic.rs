// Fixture: every face of the panic rule — `.unwrap()` (line 5),
// `.expect()` (line 6), `panic!` (line 8), `todo!` (line 14).

pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if head > tail {
        panic!("unsorted");
    }
    *head
}

pub fn later() {
    todo!()
}
