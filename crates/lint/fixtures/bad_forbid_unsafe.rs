// Fixture: a crate root missing `#![forbid(unsafe_code)]`.

pub fn fine() -> u32 {
    7
}
