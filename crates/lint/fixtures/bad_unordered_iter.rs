// Fixture: `HashMap` in a result-affecting path (line 4).

pub fn tally(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for x in xs {
        *seen.entry(*x).or_insert(0usize) += 1;
    }
    seen.len()
}
