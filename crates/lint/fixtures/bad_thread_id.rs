// Fixture: thread identity in a result-affecting path (line 4).

pub fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}
