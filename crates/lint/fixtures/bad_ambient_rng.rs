// Fixture: ambient (per-process) randomness (line 4).

pub fn seed() -> u64 {
    let state = std::collections::hash_map::RandomState::new();
    std::hash::BuildHasher::hash_one(&state, 1u64)
}
