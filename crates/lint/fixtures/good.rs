// Fixture: a file the lint has nothing to say about — ordered
// collections, a complete digest, a justified (and used) allow, and
// the crate-root safety pin.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub struct GoodSpec {
    pub rate: u64,
    pub warmup_s: u64,
}

pub fn good_digest(s: &GoodSpec) -> u64 {
    s.rate.wrapping_mul(31).wrapping_add(s.warmup_s)
}

pub fn count(xs: &[u32]) -> usize {
    let mut seen: BTreeMap<u32, usize> = BTreeMap::new();
    for x in xs {
        *seen.entry(*x).or_insert(0) += 1;
    }
    seen.len()
}

pub fn head(xs: &[u32]) -> u32 {
    // lint: allow(panic) — fixture-documented invariant: callers pass
    // non-empty slices.
    *xs.first().expect("non-empty")
}

#[cfg(test)]
mod tests {
    // Test code is out of scope: this unwrap must not count.
    #[test]
    fn t() {
        assert_eq!(super::head(&[1]), [1u32].first().copied().unwrap());
    }
}
