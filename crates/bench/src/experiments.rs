//! Experiment definitions: one function per reconstructed table/figure.
//!
//! Base configuration (unless a sweep varies it): `mid-256` preset
//! (256 nodes × 64 cores × 256 GiB), per-rack pools of 512 GiB, offered
//! load 0.9, 1,500 jobs, seed 42, saturating slowdown with a 1.5× worst
//! case. Each experiment prints the same rows/series the corresponding
//! figure plots.
//!
//! Every simulation-backed experiment is a declarative
//! [`ExperimentSpec`] grid executed by [`ExperimentRunner`]; the functions
//! here only declare axes and format the resulting table.

use dmhpc_metrics::{JobClass, SimReport};
use dmhpc_platform::{NodeSpec, PoolTopology, SlowdownModel};
use dmhpc_sched::{
    AdmissionPolicy, BackfillPolicy, MemoryPolicy, OrderPolicy, SchedulerBuilder, SchedulerConfig,
};
use dmhpc_sim::scenarios::default_slowdown;
use dmhpc_sim::{ExperimentBuilder, ExperimentResults, ExperimentRunner, ExperimentSpec, SimError};
use dmhpc_workload::{stats as wstats, SystemPreset};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;

const GIB: u64 = 1024;
const N_JOBS: usize = 1500;
const SEED: u64 = 42;
const LOAD: f64 = 0.9;
const BASE_POOL_GIB: u64 = 512;
const PRESET: SystemPreset = SystemPreset::MidCluster;

/// A finished experiment: id, title, and the printed body.
pub struct ExpResult {
    /// Experiment id (`t1`, `f3`, `a2`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Printed rows (also written to `results/<id>.txt`).
    pub body: String,
}

/// All experiment ids in report order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "t1", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "t2", "a1", "a2", "a3",
    ]
}

/// Execution knobs shared by every experiment in one `repro` invocation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Attach a content-addressed result cache at this directory: cells
    /// already stored there load instead of simulating, and fresh cells
    /// are stored for the next invocation.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Pending-event-set backend override for simulated cells (results
    /// are identical on either; `None` = per-cell default).
    pub event_queue: Option<dmhpc_sim::EventQueueKind>,
    /// Stream every simulated cell's event trace to this directory as
    /// JSONL (constant memory per cell; hash-neutral, so caches stay
    /// warm). `None` = no trace export.
    pub trace_dir: Option<PathBuf>,
}

thread_local! {
    // The experiment functions below are declarative tables; the runner
    // they share is ambient so adding an execution knob does not churn
    // every table definition.
    static RUNNER: RefCell<ExperimentRunner> = RefCell::new(ExperimentRunner::new());
}

/// Run one experiment by id with default options (no cache, auto threads).
pub fn run(id: &str) -> Option<ExpResult> {
    run_with(id, &RunOptions::default()).expect("default options cannot fail")
}

/// Run one experiment by id under explicit [`RunOptions`]. `Ok(None)`
/// means the id is unknown; `Err` surfaces cache-directory *setup*
/// problems (unwritable/uncreatable dir). Store failures mid-run (disk
/// filling up underneath a running sweep) abort with a panic — the
/// experiment tables are deliberately infallible declarations; `repro
/// grid` mode reports the same condition as a typed error.
pub fn run_with(id: &str, options: &RunOptions) -> Result<Option<ExpResult>, SimError> {
    let mut runner = ExperimentRunner::with_threads(options.threads);
    if let Some(dir) = &options.cache_dir {
        runner = runner.cache_dir(dir)?;
    }
    if let Some(kind) = options.event_queue {
        runner = runner.event_queue(kind);
    }
    if let Some(dir) = &options.trace_dir {
        runner = runner.trace_dir(dir)?;
    }
    RUNNER.with(|r| *r.borrow_mut() = runner);
    let result = dispatch(id);
    RUNNER.with(|r| *r.borrow_mut() = ExperimentRunner::new());
    Ok(result)
}

/// The CI smoke grid: small enough to finish in seconds, wide enough to
/// exercise every axis (2 pools × 2 seeds × 2 schedulers) — the grid the
/// sharded `repro grid`/`repro merge` smoke in CI runs on every PR.
pub fn smoke_spec() -> Result<ExperimentSpec, SimError> {
    ExperimentSpec::builder("smoke")
        .preset(SystemPreset::HighThroughput, 80)
        .pools([
            PoolTopology::None,
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        ])
        .load(0.8)
        .seeds([1, 2])
        .scheduler(sched_with(MemoryPolicy::LocalOnly, default_slowdown()))
        .scheduler(sched_with(MemoryPolicy::PoolFirstFit, default_slowdown()))
        .build()
}

/// The contention-model smoke grid: the same shape as [`smoke_spec`] but
/// under the dynamic `Contention` slowdown, so re-dilation (and, via
/// `repro grid smoke-contention --queue calendar` in CI, the calendar
/// event-queue backend) is exercised end to end on every PR.
pub fn smoke_contention_spec() -> Result<ExperimentSpec, SimError> {
    let contention = SlowdownModel::Contention {
        penalty: 1.5,
        gamma: 1.0,
    };
    ExperimentSpec::builder("smoke-contention")
        .preset(SystemPreset::HighThroughput, 80)
        .pools([
            PoolTopology::None,
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        ])
        .load(0.8)
        .seeds([1, 2])
        .scheduler(sched_with(MemoryPolicy::PoolBestFit, contention))
        .scheduler(sched_with(
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
            contention,
        ))
        .build()
}

/// The canned fault scenario `repro grid --faults` attaches and
/// [`smoke_faults_spec`] builds in: a storm of node failures, periodic
/// maintenance drains, and pool degradations, with checkpoint/restart
/// handling. Aggressive timescales so even second-long smoke runs see
/// interruptions.
pub fn default_fault_scenario() -> dmhpc_sim::FaultSpec {
    let mut gen = dmhpc_sim::FaultGenerator::quiet(21, 40_000);
    gen.node_mtbf_s = 900;
    gen.node_repair_s = 1_800;
    gen.drain_interval_s = 3_000;
    gen.drain_duration_s = 1_200;
    gen.pool_degrade_interval_s = 5_000;
    gen.pool_degrade_duration_s = 2_500;
    gen.pool_degrade_factor = 0.4;
    dmhpc_sim::FaultSpec::none()
        .with_generator(gen)
        .with_interrupt(dmhpc_sim::InterruptPolicy::Checkpoint { overhead_s: 120 })
        .with_max_resubmits(2)
}

/// Cross a spec's grid with the default fault axis (a fault-free baseline
/// plus [`default_fault_scenario`]) — what `repro grid <spec> --faults`
/// applies. The baseline cells hash identically to the original grid's,
/// so a shared cache serves both.
pub fn with_default_faults(spec: ExperimentSpec) -> Result<ExperimentSpec, SimError> {
    if !spec.faults.is_empty() {
        return Err(SimError::spec(
            "--faults conflicts with a spec that already declares a fault axis",
        ));
    }
    ExperimentBuilder::from_spec(spec)
        .fault(dmhpc_sim::FaultSpec::none())
        .fault(default_fault_scenario())
        .build()
}

/// The availability smoke grid: [`smoke_contention_spec`]'s shape crossed
/// with the default fault axis (fault-free baseline + the canned storm),
/// so node failures, drains, pool-degradation eviction, *and* dynamic
/// re-dilation under faults run — sharded — on every PR.
pub fn smoke_faults_spec() -> Result<ExperimentSpec, SimError> {
    let base = smoke_contention_spec()?;
    with_default_faults(
        ExperimentBuilder::from_spec(base)
            .name("smoke-faults")
            .build()?,
    )
}

/// The canned open-system scenario `repro grid --service` attaches and
/// [`smoke_service_spec`] builds in: a Poisson stream of the
/// high-throughput job mix at 0.85 target utilization, a 2,000-job
/// horizon, a one-hour warmup cutoff, and a one-hour wait SLO — small
/// enough for second-long smoke runs, loaded enough that queues form.
/// The stream seed is left unset so each grid cell's workload seed
/// resolves it (distinct seeds stream distinct arrivals).
pub fn default_service_scenario() -> dmhpc_sim::ServiceSpec {
    dmhpc_sim::ServiceSpec::open(SystemPreset::HighThroughput)
        .with_utilization(0.85)
        .with_horizon_jobs(2_000)
        .with_warmup_secs(3_600)
        .with_slo_wait_secs(3_600.0)
}

/// Cross a spec's grid with the default service axis (a closed-batch
/// baseline plus [`default_service_scenario`]) — what
/// `repro grid <spec> --service` applies. The baseline cells hash
/// identically to the original grid's, so a shared cache serves both.
pub fn with_default_service(spec: ExperimentSpec) -> Result<ExperimentSpec, SimError> {
    if !spec.services.is_empty() {
        return Err(SimError::spec(
            "--service conflicts with a spec that already declares a service axis",
        ));
    }
    ExperimentBuilder::from_spec(spec)
        .service(dmhpc_sim::ServiceSpec::none())
        .service(default_service_scenario())
        .build()
}

/// The open-system smoke grid: [`smoke_spec`]'s shape crossed with the
/// default service axis, so streaming admission, load control, warmup
/// cutoffs, and the O(1)-memory sketch observer run — sharded — on every
/// PR, with the closed-baseline half proving service-axis cache keys
/// stay disjoint from open cells.
pub fn smoke_service_spec() -> Result<ExperimentSpec, SimError> {
    let base = smoke_spec()?;
    with_default_service(
        ExperimentBuilder::from_spec(base)
            .name("smoke-service")
            .build()?,
    )
}

/// The canned federation scenario `repro grid --fleet` attaches and
/// [`smoke_fleet_spec`] builds in: a four-site symmetric fleet (every
/// site inherits the cell's cluster and scheduler) behind a
/// least-queue-depth meta-scheduler routing on 300 s epochs — small
/// enough for second-long smoke runs, federated enough that the
/// epoch-synchronized lockstep and snapshot routing are exercised end
/// to end.
pub fn default_fleet_scenario() -> dmhpc_sim::FleetSpec {
    dmhpc_sim::FleetSpec::symmetric(4, 300.0, dmhpc_sched::MetaPolicyKind::LeastQueueDepth)
}

/// Cross a spec's grid with the default fleet axis (a no-federation
/// baseline plus [`default_fleet_scenario`]) — what
/// `repro grid <spec> --fleet` applies. The baseline cells hash
/// identically to the original grid's, so a shared cache serves both.
pub fn with_default_fleet(spec: ExperimentSpec) -> Result<ExperimentSpec, SimError> {
    if !spec.fleets.is_empty() {
        return Err(SimError::spec(
            "--fleet conflicts with a spec that already declares a fleet axis",
        ));
    }
    ExperimentBuilder::from_spec(spec)
        .fleet(dmhpc_sim::FleetSpec::none())
        .fleet(default_fleet_scenario())
        .build()
}

/// The federation smoke grid: [`smoke_spec`]'s shape crossed with the
/// default fleet axis, so epoch-synchronized multi-site routing runs —
/// sharded — on every PR, with the no-fleet half proving fleet-axis
/// cache keys stay disjoint from federated cells.
pub fn smoke_fleet_spec() -> Result<ExperimentSpec, SimError> {
    let base = smoke_spec()?;
    with_default_fleet(
        ExperimentBuilder::from_spec(base)
            .name("smoke-fleet")
            .build()?,
    )
}

/// The deadline service scenario the `smoke-deadline` grid runs:
/// [`default_service_scenario`]'s stream with per-job budget-factor SLO
/// stamping (deadline = arrival + factor × walltime, factor uniform in
/// [1.5, 4)). Budget factors — not a uniform wait target — so deadline
/// order genuinely differs from arrival order and EDF/least-laxity have
/// something to exploit.
pub fn default_deadline_scenario() -> dmhpc_sim::ServiceSpec {
    default_service_scenario().with_slo_budget_factor(1.5, 4.0)
}

/// The deadline-scheduling smoke grid: the [`smoke_spec`] machine under
/// the budget-factor-stamped open stream, sweeping the deadline-aware
/// ordering family (FCFS baseline, EDF, least-laxity, batched-budget
/// release) with everything else held fixed — so the only grid axis that
/// moves is *ordering*, and per-cell `slo_attainment` columns compare
/// directly. Sharded in CI like the other smoke grids.
pub fn smoke_deadline_spec() -> Result<ExperimentSpec, SimError> {
    let order_sched = |order: OrderPolicy| {
        SchedulerBuilder::new()
            .order(order)
            .slowdown(default_slowdown())
            .build()
    };
    ExperimentSpec::builder("smoke-deadline")
        .preset(SystemPreset::HighThroughput, 80)
        .pool(PoolTopology::None)
        .load(0.8)
        .seeds([1, 2])
        .service(default_deadline_scenario())
        .scheduler(order_sched(OrderPolicy::Fcfs))
        .scheduler(order_sched(OrderPolicy::Edf))
        .scheduler(order_sched(OrderPolicy::LeastLaxity))
        .scheduler(order_sched(OrderPolicy::BatchBudget { hold_s: 60.0 }))
        .build()
}

/// The admission-control smoke grid: the deadline-stamped stream of
/// [`default_deadline_scenario`] with ordering pinned at EDF and the
/// *other* two deadline decisions sweeping — cost-based vs laxity-aware
/// placement, and admit-all vs reject-infeasible vs defer admission — on
/// a pooled machine, so per-cell `slo_attainment`/`rejected` columns
/// isolate what placement and admission add over EDF alone. Sharded in
/// CI like the other smoke grids.
pub fn smoke_admission_spec() -> Result<ExperimentSpec, SimError> {
    let sched = |memory: MemoryPolicy, admission: AdmissionPolicy| {
        SchedulerBuilder::new()
            .order(OrderPolicy::Edf)
            .memory(memory)
            .slowdown(default_slowdown())
            .admission(admission)
            .build()
    };
    let laxity = MemoryPolicy::LaxityAware { max_dilation: 1.4 };
    ExperimentSpec::builder("smoke-admission")
        .preset(SystemPreset::HighThroughput, 80)
        .pool(PoolTopology::PerRack {
            mib_per_rack: 384 * GIB,
        })
        .load(0.8)
        .seeds([1, 2])
        .service(default_deadline_scenario())
        .scheduler(sched(
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
            AdmissionPolicy::AdmitAll,
        ))
        .scheduler(sched(laxity, AdmissionPolicy::AdmitAll))
        .scheduler(sched(laxity, AdmissionPolicy::RejectInfeasible))
        .scheduler(sched(laxity, AdmissionPolicy::DeferUntilFeasible))
        .build()
}

fn dispatch(id: &str) -> Option<ExpResult> {
    Some(match id {
        "t1" => t1(),
        "f1" => f1(),
        "f2" => f2(),
        "f3" => f3(),
        "f4" => f4(),
        "f5" => f5(),
        "f6" => f6(),
        "f7" => f7(),
        "f8" => f8(),
        "f9" => f9(),
        "t2" => t2(),
        "a1" => a1(),
        "a2" => a2(),
        "a3" => a3(),
        _ => return None,
    })
}

/// The shared base grid: `mid-256` preset, 1,500 jobs, seed 42, load 0.9.
/// Experiments add their own cluster/scheduler axes on top.
fn base(name: &'static str) -> ExperimentBuilder {
    ExperimentSpec::builder(name)
        .preset(PRESET, N_JOBS)
        .load(LOAD)
        .seed(SEED)
}

/// Declare-and-run: every experiment goes through the shared ambient
/// runner (set up by [`run_with`]), so `repro --cache-dir` accelerates
/// every table and figure without each one knowing about caching.
fn execute(builder: ExperimentBuilder) -> ExperimentResults {
    let spec = builder.build().expect("experiment grid is well-formed");
    RUNNER
        .with(|r| r.borrow().clone())
        .run(&spec)
        .expect("validated grid runs and the cache directory is writable")
}

fn per_rack(gib: u64) -> PoolTopology {
    PoolTopology::PerRack {
        mib_per_rack: gib * GIB,
    }
}

fn sched_with(memory: MemoryPolicy, slowdown: SlowdownModel) -> SchedulerConfig {
    SchedulerBuilder::new()
        .memory(memory)
        .slowdown(slowdown)
        .build()
}

fn policy_short(label: &str) -> &str {
    label.rsplit('+').next().unwrap_or(label)
}

// ---------------------------------------------------------------- T1 / F1

fn t1() -> ExpResult {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<10} {:>6} {:>9} {:>10} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "trace",
        "jobs",
        "span_h",
        "node_h",
        "mean_n",
        "med_run_s",
        "med_mem%",
        "p95_mem%",
        "over_node",
        "over_work"
    );
    for preset in SystemPreset::ALL {
        let spec = preset.synthetic_spec(8000);
        let w = spec.generate(SEED);
        let s = wstats::summarize(preset.name(), &w, spec.memory.node_mem_mib);
        let _ = writeln!(
            body,
            "{:<10} {:>6} {:>9.1} {:>10.0} {:>7.1} {:>9.0} {:>8.1}% {:>7.1}% {:>8.1}% {:>8.1}%",
            s.name,
            s.jobs,
            s.span_hours,
            s.node_hours,
            s.mean_nodes,
            s.median_runtime_s,
            100.0 * s.median_mem_frac,
            100.0 * s.p95_mem_frac,
            100.0 * s.over_node_fraction,
            100.0 * s.over_node_work_fraction,
        );
    }
    ExpResult {
        id: "t1",
        title: "Workload characterization (per synthetic system preset)",
        body,
    }
}

fn f1() -> ExpResult {
    let spec = PRESET.synthetic_spec(8000);
    let w = spec.generate(SEED);
    let pts = wstats::memory_demand_cdf(&w, spec.memory.node_mem_mib, 25);
    let mut body = String::from("mem_frac_of_node,cdf\n");
    for (x, y) in pts {
        let _ = writeln!(body, "{x:.4},{y:.4}");
    }
    ExpResult {
        id: "f1",
        title: "CDF of per-node memory demand (fraction of node DRAM)",
        body,
    }
}

// ---------------------------------------------------------------- F2

fn f2() -> ExpResult {
    let outs = execute(
        base("f2")
            .pool(PoolTopology::None)
            .scheduler(sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None)),
    );
    let out = &outs.cells()[0].output;
    let mut body = String::new();
    let _ = writeln!(
        body,
        "# motivation: CPU vs DRAM utilization gap under local-only scheduling"
    );
    let _ = writeln!(
        body,
        "node_util={:.3} dram_util={:.3} gap={:.3} inflated_jobs={:.1}%",
        out.report.node_util,
        out.report.dram_util,
        out.report.node_util - out.report.dram_util,
        100.0 * out.report.inflated_fraction,
    );
    let _ = writeln!(body, "hour,nodes_busy_frac,dram_used_frac");
    let nodes = out.series.node_util_series(out.end_time, 25);
    let dram = out.series.dram_util_series(out.end_time, 25);
    for ((h, n), (_, d)) in nodes.iter().zip(dram.iter()) {
        let _ = writeln!(body, "{h:.2},{n:.4},{d:.4}");
    }
    ExpResult {
        id: "f2",
        title: "CPU vs memory utilization over time (local-only baseline)",
        body,
    }
}

// ---------------------------------------------------------------- F3

fn f3() -> ExpResult {
    let sizes = [0u64, 128, 256, 512, 1024];
    let outs = execute(
        base("f3")
            .pools(sizes.iter().map(|&gib| {
                if gib == 0 {
                    PoolTopology::None
                } else {
                    per_rack(gib)
                }
            }))
            .policy_suite(default_slowdown()),
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "policy", "pool_gib", "mean_wait_s", "p95_wait_s", "p95_bsld"
    );
    // Policy-major rows (the figure draws one line per policy). Grid order
    // is cluster-outer/scheduler-inner, so cell (ci, si) sits at
    // `ci * n_policies + si`.
    let n_policies = outs.len() / sizes.len();
    for si in 0..n_policies {
        for (ci, &gib) in sizes.iter().enumerate() {
            let cell = &outs.cells()[ci * n_policies + si];
            let _ = writeln!(
                body,
                "{:<14} {:>10} {:>12.0} {:>12.0} {:>10.2}",
                policy_short(&cell.output.report.label),
                gib,
                cell.output.report.mean_wait_s,
                cell.output.report.p95_wait_s,
                cell.output.report.p95_bsld,
            );
        }
    }
    ExpResult {
        id: "f3",
        title: "Wait time vs per-rack pool capacity (4 policies)",
        body,
    }
}

// ---------------------------------------------------------------- F4

fn f4() -> ExpResult {
    let outs = execute(
        base("f4")
            .pool(per_rack(BASE_POOL_GIB))
            .loads([0.7, 0.8, 1.0, 1.1]) // 0.9 comes from base()
            .policy_suite(default_slowdown()),
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>6} {:>12} {:>10} {:>10}",
        "policy", "load", "mean_wait_s", "p95_bsld", "node_util"
    );
    let mut loads: Vec<f64> = outs.cells().iter().filter_map(|c| c.key.load).collect();
    loads.sort_by(|a, b| a.partial_cmp(b).expect("finite loads"));
    loads.dedup();
    for &load in &loads {
        for cell in outs.select(|k| k.load == Some(load)) {
            let _ = writeln!(
                body,
                "{:<14} {:>6.2} {:>12.0} {:>10.2} {:>10.3}",
                policy_short(&cell.output.report.label),
                load,
                cell.output.report.mean_wait_s,
                cell.output.report.p95_bsld,
                cell.output.report.node_util,
            );
        }
    }
    ExpResult {
        id: "f4",
        title: "Bounded slowdown vs offered load (4 policies, pool 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F5

fn f5() -> ExpResult {
    // Shrink node DRAM while a fixed pool compensates: does disaggregation
    // let you buy thinner nodes?
    let drams = [128u64, 192, 256, 384, 512];
    let (racks, npr, cores, _) = PRESET.machine();
    let mut builder = base("f5");
    for &dram in &drams {
        builder = builder.cluster(
            format!("dram-{dram}gib"),
            dmhpc_platform::ClusterSpec::new(
                racks,
                npr,
                NodeSpec::new(cores, dram * GIB),
                per_rack(BASE_POOL_GIB),
            ),
        );
    }
    let outs = execute(builder.schedulers([
        sched_with(MemoryPolicy::LocalOnly, default_slowdown()),
        sched_with(
            MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
            default_slowdown(),
        ),
    ]));
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "policy", "dram_gib", "node_util", "mean_wait_s", "jobs_per_day", "borrowed%"
    );
    for memory in ["local-only", "slowdown-aware"] {
        for &dram in &drams {
            let cell = outs
                .select(|k| k.cluster == format!("dram-{dram}gib") && k.scheduler.contains(memory))
                .into_iter()
                .next()
                .expect("every (dram, policy) cell ran");
            let r = &cell.output.report;
            let _ = writeln!(
                body,
                "{:<14} {:>9} {:>10.3} {:>12.0} {:>12.0} {:>9.1}%",
                memory,
                dram,
                r.node_util,
                r.mean_wait_s,
                r.throughput_jobs_per_day,
                100.0 * r.borrowed_fraction,
            );
        }
    }
    ExpResult {
        id: "f5",
        title: "Utilization & throughput vs node DRAM (pool fixed at 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F6

fn f6() -> ExpResult {
    let penalties = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0];
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>8} {:>11} {:>12} {:>11} {:>10}",
        "policy", "penalty", "makespan_h", "mean_wait_s", "mean_dil", "borrowed%"
    );
    // Local-only reference (penalty-independent).
    let base_outs = execute(
        base("f6-baseline")
            .pool(PoolTopology::None)
            .scheduler(sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None)),
    );
    let b = &base_outs.cells()[0].output.report;
    let _ = writeln!(
        body,
        "{:<14} {:>8} {:>11.1} {:>12.0} {:>11.3} {:>9.1}%",
        "local-only", "-", b.makespan_h, b.mean_wait_s, 1.0, 0.0
    );
    // The penalty sweep is a scheduler axis: memory policy × slowdown model.
    let memories = [
        MemoryPolicy::PoolFirstFit,
        MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
    ];
    let outs = execute(base("f6").pool(per_rack(BASE_POOL_GIB)).schedulers(
        memories.iter().flat_map(|&memory| {
            penalties.map(move |penalty| {
                sched_with(
                    memory,
                    SlowdownModel::Saturating {
                        penalty,
                        curvature: 3.0,
                    },
                )
            })
        }),
    ));
    for (cell, (memory, penalty)) in outs.cells().iter().zip(
        memories
            .iter()
            .flat_map(|&m| penalties.map(move |p| (m, p))),
    ) {
        let r = &cell.output.report;
        let _ = writeln!(
            body,
            "{:<14} {:>8.1} {:>11.1} {:>12.0} {:>11.3} {:>9.1}%",
            memory.name(),
            penalty,
            r.makespan_h,
            r.mean_wait_s,
            r.mean_dilation_borrowers.max(1.0),
            100.0 * r.borrowed_fraction,
        );
    }
    ExpResult {
        id: "f6",
        title: "Crossover vs far-memory penalty (does borrowing stop paying?)",
        body,
    }
}

// ---------------------------------------------------------------- F7

fn f7() -> ExpResult {
    let outs = execute(
        base("f7")
            .pools([per_rack(128), per_rack(512)])
            .scheduler(sched_with(MemoryPolicy::PoolFirstFit, default_slowdown())),
    );
    let mut body = String::from("pool_gib,hour,pool_util\n");
    for (cell, gib) in outs.cells().iter().zip([128u64, 512]) {
        let out = &cell.output;
        for (h, u) in out.series.pool_util_series(out.end_time, 25) {
            let _ = writeln!(body, "{gib},{h:.2},{u:.4}");
        }
    }
    ExpResult {
        id: "f7",
        title: "Pool utilization over time (128 vs 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F8

fn f8() -> ExpResult {
    let baseline = execute(
        base("f8-baseline")
            .pool(PoolTopology::None)
            .scheduler(sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None)),
    );
    let aware = execute(
        base("f8-aware")
            .pool(per_rack(BASE_POOL_GIB))
            .scheduler(sched_with(
                MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
                default_slowdown(),
            )),
    );
    let baseline = &baseline.cells()[0].output;
    let aware = &aware.cells()[0].output;
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<12} {:>6} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "class", "jobs", "wait_local_s", "wait_aware_s", "speedup", "borrowed%", "inflated%"
    );
    for class in JobClass::ALL {
        let b = baseline.report.classes.row(class);
        let a = aware.report.classes.row(class);
        let speedup = if a.mean_wait_s > 0.0 {
            b.mean_wait_s / a.mean_wait_s
        } else if b.mean_wait_s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let _ = writeln!(
            body,
            "{:<12} {:>6} {:>14.0} {:>14.0} {:>8.2}x {:>9.1}% {:>9.1}%",
            class.name(),
            b.jobs,
            b.mean_wait_s,
            a.mean_wait_s,
            speedup,
            100.0 * a.borrowed_fraction,
            100.0 * b.inflated_fraction,
        );
    }
    ExpResult {
        id: "f8",
        title: "Per-class wait: local-only vs slowdown-aware (who wins?)",
        body,
    }
}

// ---------------------------------------------------------------- F9

fn f9() -> ExpResult {
    let total = BASE_POOL_GIB * 8; // same total capacity, different layout
    let outs = execute(
        base("f9")
            .pools([
                PoolTopology::None,
                per_rack(BASE_POOL_GIB),
                PoolTopology::Global { mib: total * GIB },
            ])
            .scheduler(sched_with(MemoryPolicy::PoolBestFit, default_slowdown())),
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "topology", "mean_wait_s", "p95_bsld", "node_util", "pool_util", "borrowed%"
    );
    for (cell, name) in outs
        .cells()
        .iter()
        .zip(["none", "per-rack-512", "global-4096"])
    {
        let r = &cell.output.report;
        let _ = writeln!(
            body,
            "{:<14} {:>12.0} {:>10.2} {:>10.3} {:>10.3} {:>9.1}%",
            name,
            r.mean_wait_s,
            r.p95_bsld,
            r.node_util,
            r.pool_util,
            100.0 * r.borrowed_fraction,
        );
    }
    ExpResult {
        id: "f9",
        title: "Pool topology: none vs per-rack vs global (equal total capacity)",
        body,
    }
}

// ---------------------------------------------------------------- T2

fn report_table(reports: &[&SimReport]) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<28} {:>5} {:>5} {:>4} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "policy",
        "done",
        "kill",
        "rej",
        "mean_w_s",
        "p95_w_s",
        "p95_bsld",
        "node_ut",
        "pool_ut",
        "borrow%",
        "infl%",
        "fair"
    );
    for r in reports {
        let _ = writeln!(
            body,
            "{:<28} {:>5} {:>5} {:>4} {:>10.0} {:>10.0} {:>9.2} {:>9.3} {:>9.3} {:>8.1}% {:>8.1}% {:>9.3}",
            r.label,
            r.completed,
            r.killed,
            r.rejected,
            r.mean_wait_s,
            r.p95_wait_s,
            r.p95_bsld,
            r.node_util,
            r.pool_util,
            100.0 * r.borrowed_fraction,
            100.0 * r.inflated_fraction,
            r.user_fairness,
        );
    }
    body
}

fn t2() -> ExpResult {
    let outs = execute(
        base("t2")
            .pool(per_rack(BASE_POOL_GIB))
            .policy_suite(default_slowdown()),
    );
    let reports: Vec<&SimReport> = outs.cells().iter().map(|c| &c.output.report).collect();
    ExpResult {
        id: "t2",
        title: "Headline policy comparison (base config: load 0.9, 512 GiB/rack)",
        body: report_table(&reports),
    }
}

// ---------------------------------------------------------------- A1–A3

fn a1() -> ExpResult {
    let outs = execute(
        base("a1")
            .pool(per_rack(BASE_POOL_GIB))
            .schedulers([true, false].map(|inflate| {
                SchedulerBuilder::new()
                    .memory(MemoryPolicy::PoolFirstFit)
                    .slowdown(default_slowdown())
                    .inflate_walltime(inflate)
                    .build()
            })),
    );
    let mut reports = Vec::new();
    for (cell, inflate) in outs.cells().iter().zip([true, false]) {
        let mut r = cell.output.report.clone();
        r.label = format!("pool-ff inflate={inflate}");
        reports.push(r);
    }
    let refs: Vec<&SimReport> = reports.iter().collect();
    ExpResult {
        id: "a1",
        title: "Ablation A1: walltime inflation for dilated jobs (kill counts)",
        body: report_table(&refs),
    }
}

fn a2() -> ExpResult {
    let outs = execute(
        base("a2").pool(per_rack(BASE_POOL_GIB)).schedulers(
            [
                BackfillPolicy::None,
                BackfillPolicy::Easy,
                BackfillPolicy::Conservative,
            ]
            .map(|backfill| {
                SchedulerBuilder::new()
                    .order(OrderPolicy::Fcfs)
                    .backfill(backfill)
                    .memory(MemoryPolicy::PoolBestFit)
                    .slowdown(default_slowdown())
                    .build()
            }),
        ),
    );
    let reports: Vec<&SimReport> = outs.cells().iter().map(|c| &c.output.report).collect();
    ExpResult {
        id: "a2",
        title: "Ablation A2: backfill flavour under disaggregation",
        body: report_table(&reports),
    }
}

fn a3() -> ExpResult {
    let models: [(&str, SlowdownModel); 3] = [
        ("static-linear-1.5", SlowdownModel::Linear { penalty: 1.5 }),
        (
            "contention-g1",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
        ),
        (
            "contention-g2",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 2.0,
            },
        ),
    ];
    let outs = execute(
        base("a3")
            .pool(per_rack(BASE_POOL_GIB))
            .schedulers(models.map(|(_, model)| sched_with(MemoryPolicy::PoolFirstFit, model))),
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<20} {:>12} {:>10} {:>12} {:>6}",
        "model", "mean_wait_s", "p95_bsld", "mean_dil", "kill"
    );
    for (cell, (name, _)) in outs.cells().iter().zip(models) {
        let r = &cell.output.report;
        let _ = writeln!(
            body,
            "{:<20} {:>12.0} {:>10.2} {:>12.3} {:>6}",
            name,
            r.mean_wait_s,
            r.p95_bsld,
            r.mean_dilation_borrowers.max(1.0),
            r.killed,
        );
    }
    ExpResult {
        id: "a3",
        title: "Ablation A3: static vs contention-aware dilation",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_dispatch() {
        assert_eq!(all_ids().len(), 14);
        assert!(run("zzz").is_none());
    }

    #[test]
    fn t1_runs_quickly_and_shapes() {
        let r = run("t1").unwrap();
        assert_eq!(r.id, "t1");
        assert_eq!(r.body.lines().count(), 4, "header + 3 presets");
    }

    #[test]
    fn f1_is_csv_cdf() {
        let r = run("f1").unwrap();
        let lines: Vec<&str> = r.body.trim().lines().collect();
        assert_eq!(lines[0], "mem_frac_of_node,cdf");
        assert!(lines.len() > 10);
    }

    #[test]
    fn smoke_spec_compiles_and_serializes() {
        let spec = smoke_spec().unwrap();
        assert_eq!(
            spec.cell_count(),
            8,
            "2 pools × 1 load × 2 seeds × 2 schedulers"
        );
        assert_eq!(spec.compile().unwrap().len(), spec.cell_count());
        // The CI smoke writes/reads this spec as JSON.
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.cell_hashes().unwrap(), spec.cell_hashes().unwrap());
    }

    #[test]
    fn smoke_contention_spec_compiles_and_differs_from_smoke() {
        let spec = smoke_contention_spec().unwrap();
        assert_eq!(spec.cell_count(), 8);
        let cells = spec.compile().unwrap();
        assert!(cells
            .iter()
            .all(|c| c.config.scheduler.slowdown.is_dynamic()));
        // Distinct scheduler configs ⇒ disjoint cache keys from `smoke`.
        let smoke_hashes: Vec<u64> = smoke_spec()
            .unwrap()
            .cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect();
        for (_, h) in spec.cell_hashes().unwrap() {
            assert!(!smoke_hashes.contains(&h));
        }
    }

    #[test]
    fn smoke_service_spec_baseline_shares_smoke_cache_keys() {
        let spec = smoke_service_spec().unwrap();
        assert_eq!(spec.cell_count(), 2 * smoke_spec().unwrap().cell_count());
        let smoke: Vec<u64> = smoke_spec()
            .unwrap()
            .cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect();
        let mut baseline = 0;
        for (key, h) in spec.cell_hashes().unwrap() {
            if key.service.is_none() {
                baseline += 1;
                assert!(
                    smoke.contains(&h),
                    "closed-baseline cells reuse smoke cache entries"
                );
            } else {
                assert!(!smoke.contains(&h), "open cells get their own cache keys");
            }
        }
        assert_eq!(baseline * 2, spec.cell_count(), "half the cells are closed");
    }

    #[test]
    fn default_service_scenario_validates_and_resolves_seeds() {
        default_service_scenario().validate().unwrap();
        assert_eq!(
            default_service_scenario().seed,
            None,
            "stream seed left to the grid's seed axis"
        );
        // Every open cell in the smoke grid carries a resolved stream seed.
        for cell in smoke_service_spec().unwrap().compile().unwrap() {
            if !cell.service.is_none() {
                assert_eq!(cell.service.seed, cell.key.seed);
            }
        }
    }

    #[test]
    fn smoke_fleet_spec_baseline_shares_smoke_cache_keys() {
        let spec = smoke_fleet_spec().unwrap();
        assert_eq!(spec.cell_count(), 2 * smoke_spec().unwrap().cell_count());
        let smoke: Vec<u64> = smoke_spec()
            .unwrap()
            .cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect();
        let mut baseline = 0;
        for (key, h) in spec.cell_hashes().unwrap() {
            if key.fleet.is_none() {
                baseline += 1;
                assert!(
                    smoke.contains(&h),
                    "no-fleet baseline cells reuse smoke cache entries"
                );
            } else {
                assert!(!smoke.contains(&h), "federated cells get their own keys");
            }
        }
        assert_eq!(baseline * 2, spec.cell_count(), "half the cells are plain");
    }

    #[test]
    fn default_fleet_scenario_validates_against_smoke_clusters() {
        let fleet = default_fleet_scenario();
        fleet.validate().unwrap();
        assert_eq!(fleet.sites.len(), 4);
        for cluster in &smoke_spec().unwrap().clusters {
            fleet.validate_for(&cluster.1).unwrap();
        }
    }

    #[test]
    fn smoke_deadline_spec_sweeps_only_ordering() {
        let spec = smoke_deadline_spec().unwrap();
        assert_eq!(
            spec.cell_count(),
            8,
            "1 pool × 1 load × 2 seeds × 4 orderings"
        );
        let cells = spec.compile().unwrap();
        // Every cell is open and stamps per-job budget-factor deadlines.
        for cell in &cells {
            assert!(!cell.service.is_none());
            assert_eq!(cell.service.slo_budget_factor, Some((1.5, 4.0)));
            assert_eq!(cell.service.seed, cell.key.seed);
        }
        let orders: std::collections::BTreeSet<&'static str> = cells
            .iter()
            .map(|c| c.config.scheduler.order.name())
            .collect();
        assert_eq!(
            orders.into_iter().collect::<Vec<_>>(),
            ["batch-budget", "edf", "fcfs", "llf"]
        );
        // Round-trips through JSON with identical cache keys, like the
        // other CI smoke grids.
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.cell_hashes().unwrap(), spec.cell_hashes().unwrap());
    }

    #[test]
    fn run_with_cache_dir_reuses_results() {
        let dir =
            std::env::temp_dir().join(format!("dmhpc-repro-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = RunOptions {
            cache_dir: Some(dir.clone()),
            threads: 2,
            event_queue: None,
            trace_dir: None,
        };
        let cold = run_with("f2", &options).unwrap().unwrap();
        let warm = run_with("f2", &options).unwrap().unwrap();
        assert_eq!(cold.body, warm.body, "cached replay reproduces the figure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn base_grid_declares_the_standard_cell() {
        let spec = base("probe")
            .pool(per_rack(BASE_POOL_GIB))
            .policy_suite(default_slowdown())
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 4, "1 cluster × 1 load × 1 seed × suite");
        assert_eq!(spec.seeds, vec![SEED]);
        assert_eq!(spec.loads, vec![LOAD]);
    }
}
