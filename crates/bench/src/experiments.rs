//! Experiment definitions: one function per reconstructed table/figure.
//!
//! Base configuration (unless a sweep varies it): `mid-256` preset
//! (256 nodes × 64 cores × 256 GiB), per-rack pools of 512 GiB, offered
//! load 0.9, 1,500 jobs, seed 42, saturating slowdown with a 1.5× worst
//! case. Each experiment prints the same rows/series the corresponding
//! figure plots.

use dmhpc_metrics::{JobClass, SimReport};
use dmhpc_platform::{PoolTopology, SlowdownModel};
use dmhpc_sched::{BackfillPolicy, MemoryPolicy, OrderPolicy, SchedulerBuilder, SchedulerConfig};
use dmhpc_sim::scenarios::{
    default_slowdown, policy_suite, preset_cluster, preset_workload, run_policies,
};
use dmhpc_sim::{SimConfig, SimOutput, Simulation};
use dmhpc_workload::{stats as wstats, SystemPreset, Workload};
use std::fmt::Write as _;

const GIB: u64 = 1024;
const N_JOBS: usize = 1500;
const SEED: u64 = 42;
const LOAD: f64 = 0.9;
const BASE_POOL_GIB: u64 = 512;
const PRESET: SystemPreset = SystemPreset::MidCluster;

/// A finished experiment: id, title, and the printed body.
pub struct ExpResult {
    /// Experiment id (`t1`, `f3`, `a2`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Printed rows (also written to `results/<id>.txt`).
    pub body: String,
}

/// All experiment ids in report order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "t1", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "t2", "a1", "a2", "a3",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str) -> Option<ExpResult> {
    Some(match id {
        "t1" => t1(),
        "f1" => f1(),
        "f2" => f2(),
        "f3" => f3(),
        "f4" => f4(),
        "f5" => f5(),
        "f6" => f6(),
        "f7" => f7(),
        "f8" => f8(),
        "f9" => f9(),
        "t2" => t2(),
        "a1" => a1(),
        "a2" => a2(),
        "a3" => a3(),
        _ => return None,
    })
}

fn base_workload() -> Workload {
    preset_workload(PRESET, N_JOBS, SEED, LOAD)
}

fn per_rack(gib: u64) -> PoolTopology {
    PoolTopology::PerRack {
        mib_per_rack: gib * GIB,
    }
}

fn run_one(pool: PoolTopology, sched: SchedulerConfig, w: &Workload) -> SimOutput {
    Simulation::new(SimConfig::new(preset_cluster(PRESET, pool), sched)).run(w)
}

fn sched_with(memory: MemoryPolicy, slowdown: SlowdownModel) -> SchedulerConfig {
    *SchedulerBuilder::new()
        .memory(memory)
        .slowdown(slowdown)
        .build()
        .config()
}

fn policy_short(label: &str) -> &str {
    label.rsplit('+').next().unwrap_or(label)
}

// ---------------------------------------------------------------- T1 / F1

fn t1() -> ExpResult {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<10} {:>6} {:>9} {:>10} {:>7} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "trace", "jobs", "span_h", "node_h", "mean_n", "med_run_s", "med_mem%", "p95_mem%", "over_node", "over_work"
    );
    for preset in SystemPreset::ALL {
        let spec = preset.synthetic_spec(8000);
        let w = spec.generate(SEED);
        let s = wstats::summarize(preset.name(), &w, spec.memory.node_mem_mib);
        let _ = writeln!(
            body,
            "{:<10} {:>6} {:>9.1} {:>10.0} {:>7.1} {:>9.0} {:>8.1}% {:>7.1}% {:>8.1}% {:>8.1}%",
            s.name,
            s.jobs,
            s.span_hours,
            s.node_hours,
            s.mean_nodes,
            s.median_runtime_s,
            100.0 * s.median_mem_frac,
            100.0 * s.p95_mem_frac,
            100.0 * s.over_node_fraction,
            100.0 * s.over_node_work_fraction,
        );
    }
    ExpResult {
        id: "t1",
        title: "Workload characterization (per synthetic system preset)",
        body,
    }
}

fn f1() -> ExpResult {
    let spec = PRESET.synthetic_spec(8000);
    let w = spec.generate(SEED);
    let pts = wstats::memory_demand_cdf(&w, spec.memory.node_mem_mib, 25);
    let mut body = String::from("mem_frac_of_node,cdf\n");
    for (x, y) in pts {
        let _ = writeln!(body, "{x:.4},{y:.4}");
    }
    ExpResult {
        id: "f1",
        title: "CDF of per-node memory demand (fraction of node DRAM)",
        body,
    }
}

// ---------------------------------------------------------------- F2

fn f2() -> ExpResult {
    let w = base_workload();
    let out = run_one(
        PoolTopology::None,
        sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None),
        &w,
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "# motivation: CPU vs DRAM utilization gap under local-only scheduling"
    );
    let _ = writeln!(
        body,
        "node_util={:.3} dram_util={:.3} gap={:.3} inflated_jobs={:.1}%",
        out.report.node_util,
        out.report.dram_util,
        out.report.node_util - out.report.dram_util,
        100.0 * out.report.inflated_fraction,
    );
    let _ = writeln!(body, "hour,nodes_busy_frac,dram_used_frac");
    let total_nodes = preset_cluster(PRESET, PoolTopology::None).total_nodes() as f64;
    let total_dram = preset_cluster(PRESET, PoolTopology::None).total_local_mem() as f64;
    let nodes = out.series.nodes_busy.resample(out.end_time, 25);
    let dram = out.series.dram_used.resample(out.end_time, 25);
    for (n, d) in nodes.iter().zip(dram.iter()) {
        let _ = writeln!(
            body,
            "{:.2},{:.4},{:.4}",
            n.0.as_hours_f64(),
            n.1 / total_nodes,
            d.1 / total_dram
        );
    }
    ExpResult {
        id: "f2",
        title: "CPU vs memory utilization over time (local-only baseline)",
        body,
    }
}

// ---------------------------------------------------------------- F3

fn f3() -> ExpResult {
    let w = base_workload();
    let sizes = [0u64, 128, 256, 512, 1024];
    let suite = policy_suite(default_slowdown());
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "policy", "pool_gib", "mean_wait_s", "p95_wait_s", "p95_bsld"
    );
    for sched in &suite {
        for &gib in &sizes {
            let pool = if gib == 0 {
                PoolTopology::None
            } else {
                per_rack(gib)
            };
            let out = run_one(pool, *sched, &w);
            let _ = writeln!(
                body,
                "{:<14} {:>10} {:>12.0} {:>12.0} {:>10.2}",
                policy_short(&sched.label()),
                gib,
                out.report.mean_wait_s,
                out.report.p95_wait_s,
                out.report.p95_bsld,
            );
        }
    }
    ExpResult {
        id: "f3",
        title: "Wait time vs per-rack pool capacity (4 policies)",
        body,
    }
}

// ---------------------------------------------------------------- F4

fn f4() -> ExpResult {
    let loads = [0.7, 0.8, 0.9, 1.0, 1.1];
    let suite = policy_suite(default_slowdown());
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>6} {:>12} {:>10} {:>10}",
        "policy", "load", "mean_wait_s", "p95_bsld", "node_util"
    );
    for &load in &loads {
        let w = preset_workload(PRESET, N_JOBS, SEED, load);
        let outs = run_policies(preset_cluster(PRESET, per_rack(BASE_POOL_GIB)), &w, &suite, 0);
        for (sched, out) in suite.iter().zip(outs.iter()) {
            let _ = writeln!(
                body,
                "{:<14} {:>6.2} {:>12.0} {:>10.2} {:>10.3}",
                policy_short(&sched.label()),
                load,
                out.report.mean_wait_s,
                out.report.p95_bsld,
                out.report.node_util,
            );
        }
    }
    ExpResult {
        id: "f4",
        title: "Bounded slowdown vs offered load (4 policies, pool 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F5

fn f5() -> ExpResult {
    // Shrink node DRAM while a fixed pool compensates: does disaggregation
    // let you buy thinner nodes?
    let drams = [128u64, 192, 256, 384, 512];
    let w = base_workload();
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "policy", "dram_gib", "node_util", "mean_wait_s", "jobs_per_day", "borrowed%"
    );
    for memory in [MemoryPolicy::LocalOnly, MemoryPolicy::SlowdownAware { max_dilation: 1.35 }] {
        for &dram in &drams {
            let (racks, npr, cores, _) = PRESET.machine();
            let cluster = dmhpc_platform::ClusterSpec::new(
                racks,
                npr,
                dmhpc_platform::NodeSpec::new(cores, dram * GIB),
                per_rack(BASE_POOL_GIB),
            );
            let sched = sched_with(memory, default_slowdown());
            let out = Simulation::new(SimConfig::new(cluster, sched)).run(&w);
            let _ = writeln!(
                body,
                "{:<14} {:>9} {:>10.3} {:>12.0} {:>12.0} {:>9.1}%",
                memory.name(),
                dram,
                out.report.node_util,
                out.report.mean_wait_s,
                out.report.throughput_jobs_per_day,
                100.0 * out.report.borrowed_fraction,
            );
        }
    }
    ExpResult {
        id: "f5",
        title: "Utilization & throughput vs node DRAM (pool fixed at 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F6

fn f6() -> ExpResult {
    let w = base_workload();
    let penalties = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0];
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>8} {:>11} {:>12} {:>11} {:>10}",
        "policy", "penalty", "makespan_h", "mean_wait_s", "mean_dil", "borrowed%"
    );
    // Local-only reference (penalty-independent).
    let base = run_one(
        PoolTopology::None,
        sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None),
        &w,
    );
    let _ = writeln!(
        body,
        "{:<14} {:>8} {:>11.1} {:>12.0} {:>11.3} {:>9.1}%",
        "local-only", "-", base.report.makespan_h, base.report.mean_wait_s, 1.0, 0.0
    );
    for memory in [MemoryPolicy::PoolFirstFit, MemoryPolicy::SlowdownAware { max_dilation: 1.35 }] {
        for &penalty in &penalties {
            let model = SlowdownModel::Saturating {
                penalty,
                curvature: 3.0,
            };
            let out = run_one(per_rack(BASE_POOL_GIB), sched_with(memory, model), &w);
            let _ = writeln!(
                body,
                "{:<14} {:>8.1} {:>11.1} {:>12.0} {:>11.3} {:>9.1}%",
                memory.name(),
                penalty,
                out.report.makespan_h,
                out.report.mean_wait_s,
                out.report.mean_dilation_borrowers.max(1.0),
                100.0 * out.report.borrowed_fraction,
            );
        }
    }
    ExpResult {
        id: "f6",
        title: "Crossover vs far-memory penalty (does borrowing stop paying?)",
        body,
    }
}

// ---------------------------------------------------------------- F7

fn f7() -> ExpResult {
    let w = base_workload();
    let mut body = String::from("pool_gib,hour,pool_util\n");
    for gib in [128u64, 512] {
        let out = run_one(
            per_rack(gib),
            sched_with(MemoryPolicy::PoolFirstFit, default_slowdown()),
            &w,
        );
        for (h, u) in out.series.pool_util_series(out.end_time, 25) {
            let _ = writeln!(body, "{gib},{h:.2},{u:.4}");
        }
    }
    ExpResult {
        id: "f7",
        title: "Pool utilization over time (128 vs 512 GiB/rack)",
        body,
    }
}

// ---------------------------------------------------------------- F8

fn f8() -> ExpResult {
    let w = base_workload();
    let baseline = run_one(
        PoolTopology::None,
        sched_with(MemoryPolicy::LocalOnly, SlowdownModel::None),
        &w,
    );
    let aware = run_one(
        per_rack(BASE_POOL_GIB),
        sched_with(MemoryPolicy::SlowdownAware { max_dilation: 1.35 }, default_slowdown()),
        &w,
    );
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<12} {:>6} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "class", "jobs", "wait_local_s", "wait_aware_s", "speedup", "borrowed%", "inflated%"
    );
    for class in JobClass::ALL {
        let b = baseline.report.classes.row(class);
        let a = aware.report.classes.row(class);
        let speedup = if a.mean_wait_s > 0.0 {
            b.mean_wait_s / a.mean_wait_s
        } else if b.mean_wait_s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let _ = writeln!(
            body,
            "{:<12} {:>6} {:>14.0} {:>14.0} {:>8.2}x {:>9.1}% {:>9.1}%",
            class.name(),
            b.jobs,
            b.mean_wait_s,
            a.mean_wait_s,
            speedup,
            100.0 * a.borrowed_fraction,
            100.0 * b.inflated_fraction,
        );
    }
    ExpResult {
        id: "f8",
        title: "Per-class wait: local-only vs slowdown-aware (who wins?)",
        body,
    }
}

// ---------------------------------------------------------------- F9

fn f9() -> ExpResult {
    let w = base_workload();
    let total = BASE_POOL_GIB * 8; // same total capacity, different layout
    let topologies = [
        ("none", PoolTopology::None),
        ("per-rack-512", per_rack(BASE_POOL_GIB)),
        ("global-4096", PoolTopology::Global { mib: total * GIB }),
    ];
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<14} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "topology", "mean_wait_s", "p95_bsld", "node_util", "pool_util", "borrowed%"
    );
    for (name, pool) in topologies {
        let out = run_one(
            pool,
            sched_with(MemoryPolicy::PoolBestFit, default_slowdown()),
            &w,
        );
        let _ = writeln!(
            body,
            "{:<14} {:>12.0} {:>10.2} {:>10.3} {:>10.3} {:>9.1}%",
            name,
            out.report.mean_wait_s,
            out.report.p95_bsld,
            out.report.node_util,
            out.report.pool_util,
            100.0 * out.report.borrowed_fraction,
        );
    }
    ExpResult {
        id: "f9",
        title: "Pool topology: none vs per-rack vs global (equal total capacity)",
        body,
    }
}

// ---------------------------------------------------------------- T2

fn report_table(reports: &[&SimReport]) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<28} {:>5} {:>5} {:>4} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "policy", "done", "kill", "rej", "mean_w_s", "p95_w_s", "p95_bsld", "node_ut", "pool_ut", "borrow%", "infl%", "fair"
    );
    for r in reports {
        let _ = writeln!(
            body,
            "{:<28} {:>5} {:>5} {:>4} {:>10.0} {:>10.0} {:>9.2} {:>9.3} {:>9.3} {:>8.1}% {:>8.1}% {:>9.3}",
            r.label,
            r.completed,
            r.killed,
            r.rejected,
            r.mean_wait_s,
            r.p95_wait_s,
            r.p95_bsld,
            r.node_util,
            r.pool_util,
            100.0 * r.borrowed_fraction,
            100.0 * r.inflated_fraction,
            r.user_fairness,
        );
    }
    body
}

fn t2() -> ExpResult {
    let w = base_workload();
    let suite = policy_suite(default_slowdown());
    let outs = run_policies(preset_cluster(PRESET, per_rack(BASE_POOL_GIB)), &w, &suite, 0);
    let reports: Vec<&SimReport> = outs.iter().map(|o| &o.report).collect();
    ExpResult {
        id: "t2",
        title: "Headline policy comparison (base config: load 0.9, 512 GiB/rack)",
        body: report_table(&reports),
    }
}

// ---------------------------------------------------------------- A1–A3

fn a1() -> ExpResult {
    let w = base_workload();
    let mut reports = Vec::new();
    for inflate in [true, false] {
        let sched = *SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolFirstFit)
            .slowdown(default_slowdown())
            .inflate_walltime(inflate)
            .build()
            .config();
        let mut out = run_one(per_rack(BASE_POOL_GIB), sched, &w);
        out.report.label = format!("pool-ff inflate={inflate}");
        reports.push(out.report);
    }
    let refs: Vec<&SimReport> = reports.iter().collect();
    ExpResult {
        id: "a1",
        title: "Ablation A1: walltime inflation for dilated jobs (kill counts)",
        body: report_table(&refs),
    }
}

fn a2() -> ExpResult {
    let w = base_workload();
    let mut reports = Vec::new();
    for backfill in [
        BackfillPolicy::None,
        BackfillPolicy::Easy,
        BackfillPolicy::Conservative,
    ] {
        let sched = *SchedulerBuilder::new()
            .order(OrderPolicy::Fcfs)
            .backfill(backfill)
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(default_slowdown())
            .build()
            .config();
        let out = run_one(per_rack(BASE_POOL_GIB), sched, &w);
        reports.push(out.report);
    }
    let refs: Vec<&SimReport> = reports.iter().collect();
    ExpResult {
        id: "a2",
        title: "Ablation A2: backfill flavour under disaggregation",
        body: report_table(&refs),
    }
}

fn a3() -> ExpResult {
    let w = base_workload();
    let mut reports = Vec::new();
    let models: [(&str, SlowdownModel); 3] = [
        ("static-linear-1.5", SlowdownModel::Linear { penalty: 1.5 }),
        (
            "contention-g1",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
        ),
        (
            "contention-g2",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 2.0,
            },
        ),
    ];
    for (name, model) in models {
        let mut out = run_one(
            per_rack(BASE_POOL_GIB),
            sched_with(MemoryPolicy::PoolFirstFit, model),
            &w,
        );
        out.report.label = name.to_string();
        reports.push(out.report);
    }
    let mut body = String::new();
    let _ = writeln!(
        body,
        "{:<20} {:>12} {:>10} {:>12} {:>6}",
        "model", "mean_wait_s", "p95_bsld", "mean_dil", "kill"
    );
    for r in &reports {
        let _ = writeln!(
            body,
            "{:<20} {:>12.0} {:>10.2} {:>12.3} {:>6}",
            r.label,
            r.mean_wait_s,
            r.p95_bsld,
            r.mean_dilation_borrowers.max(1.0),
            r.killed,
        );
    }
    ExpResult {
        id: "a3",
        title: "Ablation A3: static vs contention-aware dilation",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_dispatch() {
        assert_eq!(all_ids().len(), 14);
        assert!(run("zzz").is_none());
    }

    #[test]
    fn t1_runs_quickly_and_shapes() {
        let r = run("t1").unwrap();
        assert_eq!(r.id, "t1");
        assert_eq!(r.body.lines().count(), 4, "header + 3 presets");
    }

    #[test]
    fn f1_is_csv_cdf() {
        let r = run("f1").unwrap();
        let lines: Vec<&str> = r.body.trim().lines().collect();
        assert_eq!(lines[0], "mem_frac_of_node,cdf");
        assert!(lines.len() > 10);
    }
}
