//! Reproduction harness: regenerate any table/figure of the evaluation.
//!
//! ```text
//! cargo run --release -p dmhpc-bench --bin repro -- all
//! cargo run --release -p dmhpc-bench --bin repro -- t2 f3 f6
//! cargo run --release -p dmhpc-bench --bin repro -- --list
//! ```
//!
//! Output is printed and mirrored to `results/<id>.txt`.

use dmhpc_bench::experiments;
use std::io::Write as _;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] <id>... | all");
        eprintln!("ids: {}", experiments::all_ids().join(" "));
        return Ok(());
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::all_ids() {
            println!("{id}");
        }
        return Ok(());
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::all_ids().to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    std::fs::create_dir_all("results")?;
    for id in ids {
        let start = Instant::now();
        let Some(result) = experiments::run(id) else {
            return Err(format!("unknown experiment id {id:?} (try --list)").into());
        };
        let elapsed = start.elapsed();
        println!(
            "== {} — {} [{:.1}s]",
            result.id,
            result.title,
            elapsed.as_secs_f64()
        );
        println!("{}", result.body);
        let mut f = std::fs::File::create(format!("results/{}.txt", result.id))?;
        writeln!(f, "# {} — {}", result.id, result.title)?;
        f.write_all(result.body.as_bytes())?;
    }
    Ok(())
}
