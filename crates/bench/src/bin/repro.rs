//! Reproduction harness: regenerate any table/figure of the evaluation,
//! and run/shard/merge declarative experiment grids at scale.
//!
//! ```text
//! # Tables and figures (optionally accelerated by a result cache):
//! cargo run --release -p dmhpc-bench --bin repro -- all
//! cargo run --release -p dmhpc-bench --bin repro -- --cache-dir .cache t2 f3 f6
//!
//! # Grid mode: run a spec (JSON file or the built-in `smoke` grid),
//! # optionally one shard of it, storing cells in the content-addressed
//! # cache so independent shard processes/CI jobs share one store:
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 0/2 --cache-dir .grid
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 1/2 --cache-dir .grid
//!
//! # Merge: recombine shard outputs into the full grid-ordered table.
//! # Every cell must already be cached (zero simulations) — a missing
//! # cell means a shard did not run, and the merge fails loudly:
//! cargo run --release -p dmhpc-bench --bin repro -- merge smoke --cache-dir .grid
//! ```
//!
//! Table/figure output is printed and mirrored to `results/<id>.txt`;
//! grid/merge output lands in `results/<name>.*.{csv,json}`.

use dmhpc_bench::experiments::{self, RunOptions};
use dmhpc_sim::{ExperimentResults, ExperimentRunner, ExperimentSpec, Shard, SimError};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn usage() {
    eprintln!("usage: repro [--list] [--cache-dir DIR] [--threads N] <id>... | all");
    eprintln!("       repro grid  <spec.json|smoke> [--shard i/n] [--cache-dir DIR] [--threads N]");
    eprintln!("       repro merge <spec.json|smoke> --cache-dir DIR");
    eprintln!("ids: {}", experiments::all_ids().join(" "));
}

struct Cli {
    mode: Mode,
    list: bool,
    cache_dir: Option<PathBuf>,
    shard: Option<Shard>,
    threads: usize,
    args: Vec<String>,
}

enum Mode {
    Tables,
    Grid,
    Merge,
}

fn parse_cli(raw: Vec<String>) -> Result<Cli, Box<dyn std::error::Error>> {
    let mut cli = Cli {
        mode: Mode::Tables,
        list: false,
        cache_dir: None,
        shard: None,
        threads: 0,
        args: Vec::new(),
    };
    let mut it = raw.into_iter().peekable();
    if let Some(first) = it.peek() {
        match first.as_str() {
            "grid" => {
                cli.mode = Mode::Grid;
                it.next();
            }
            "merge" => {
                cli.mode = Mode::Merge;
                it.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = it.next() {
        let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                     flag: &str|
         -> Result<String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match arg.as_str() {
            "--list" => cli.list = true,
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(value(&mut it, "--cache-dir")?)),
            "--shard" => cli.shard = Some(Shard::parse(&value(&mut it, "--shard")?)?),
            "--threads" => cli.threads = value(&mut it, "--threads")?.parse()?,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}").into());
            }
            _ => cli.args.push(arg),
        }
    }
    Ok(cli)
}

/// Resolve a grid-mode spec argument: a JSON file path, or the built-in
/// `smoke` grid. Compile errors surface as `SimError` → non-zero exit.
fn load_spec(arg: &str) -> Result<ExperimentSpec, Box<dyn std::error::Error>> {
    if arg == "smoke" {
        return Ok(experiments::smoke_spec()?);
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| SimError::io(format!("reading spec {arg}"), e))?;
    Ok(ExperimentSpec::from_json(&text)?)
}

fn export(results: &ExperimentResults, stem: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{stem}.csv"), results.to_csv())?;
    std::fs::write(format!("results/{stem}.json"), results.to_json())?;
    Ok(())
}

fn run_grid(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let Some(spec_arg) = cli.args.first() else {
        usage();
        return Err("grid mode needs a spec (a JSON file or `smoke`)".into());
    };
    let spec = load_spec(spec_arg)?;
    if cli.list {
        // Listing compiles the grid, so an ill-formed spec fails loudly
        // here instead of being discovered mid-CI. With --shard, list
        // exactly the cells that shard would run.
        for (i, (key, hash)) in spec.cell_hashes()?.into_iter().enumerate() {
            if cli.shard.is_none_or(|s| s.owns(i)) {
                println!("{:016x}  {}", hash, key.label());
            }
        }
        return Ok(());
    }
    let mut runner = ExperimentRunner::with_threads(cli.threads);
    if let Some(dir) = &cli.cache_dir {
        runner = runner.cache_dir(dir)?;
    }
    let start = Instant::now();
    let (results, stem) = match cli.shard {
        Some(shard) => (
            runner.run_shard(&spec, shard)?,
            format!("{}.shard{}of{}", spec.name, shard.index(), shard.count()),
        ),
        None => (runner.run(&spec)?, spec.name.clone()),
    };
    export(&results, &stem)?;
    let stats = results.stats();
    println!(
        "== grid {} — {} cells ({} simulated, {} cached) [{:.1}s] -> results/{stem}.{{csv,json}}",
        spec.name,
        results.len(),
        stats.simulated,
        stats.cache_hits,
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn run_merge(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let Some(spec_arg) = cli.args.first() else {
        usage();
        return Err("merge mode needs a spec (a JSON file or `smoke`)".into());
    };
    if cli.cache_dir.is_none() {
        return Err("merge mode needs --cache-dir (where the shards stored cells)".into());
    }
    if cli.shard.is_some() {
        return Err(
            "--shard does not apply to merge mode (it always rebuilds the full grid)".into(),
        );
    }
    let spec = load_spec(spec_arg)?;
    let runner = ExperimentRunner::with_threads(cli.threads)
        .cache_dir(cli.cache_dir.as_ref().expect("checked above"))?;
    let start = Instant::now();
    let results = runner.run(&spec)?;
    let stats = results.stats();
    if stats.simulated > 0 {
        return Err(format!(
            "merge expected every cell cached, but {} of {} cell(s) were missing \
             (did all shards run against this cache dir?)",
            stats.simulated,
            results.len()
        )
        .into());
    }
    export(&results, &spec.name)?;
    println!(
        "== merge {} — {} cells, all from cache [{:.1}s] -> results/{}.{{csv,json}}",
        spec.name,
        results.len(),
        start.elapsed().as_secs_f64(),
        spec.name
    );
    Ok(())
}

fn run_tables(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    if cli.shard.is_some() {
        // Silently running the *full* suite under a flag that promises a
        // slice would double work in fan-out scripts; refuse instead.
        return Err("--shard only applies to grid mode (tables always run whole grids)".into());
    }
    if cli.list {
        for id in experiments::all_ids() {
            println!("{id}");
        }
        // The built-in grid specs are part of the CLI surface; an
        // ill-formed one must fail the listing (and therefore CI), not
        // exit 0 silently.
        let smoke = experiments::smoke_spec()?;
        println!("grid: smoke ({} cells)", smoke.compile()?.len());
        return Ok(());
    }
    let ids: Vec<&str> = if cli.args.iter().any(|a| a == "all") {
        experiments::all_ids().to_vec()
    } else {
        cli.args.iter().map(String::as_str).collect()
    };
    let options = RunOptions {
        cache_dir: cli.cache_dir.clone(),
        threads: cli.threads,
    };

    std::fs::create_dir_all("results")?;
    for id in ids {
        let start = Instant::now();
        let Some(result) = experiments::run_with(id, &options)? else {
            return Err(format!("unknown experiment id {id:?} (try --list)").into());
        };
        let elapsed = start.elapsed();
        println!(
            "== {} — {} [{:.1}s]",
            result.id,
            result.title,
            elapsed.as_secs_f64()
        );
        println!("{}", result.body);
        let mut f = std::fs::File::create(format!("results/{}.txt", result.id))?;
        writeln!(f, "# {} — {}", result.id, result.title)?;
        f.write_all(result.body.as_bytes())?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return Ok(());
    }
    let cli = parse_cli(args)?;
    match cli.mode {
        Mode::Tables => run_tables(&cli),
        Mode::Grid => run_grid(&cli),
        Mode::Merge => run_merge(&cli),
    }
}
