//! Reproduction harness: regenerate any table/figure of the evaluation,
//! and run/shard/merge declarative experiment grids at scale.
//!
//! ```text
//! # Tables and figures (optionally accelerated by a result cache):
//! cargo run --release -p dmhpc-bench --bin repro -- all
//! cargo run --release -p dmhpc-bench --bin repro -- --cache-dir .cache t2 f3 f6
//!
//! # Grid mode: run a spec (JSON file or the built-in `smoke` grid),
//! # optionally one shard of it, storing cells in the content-addressed
//! # cache so independent shard processes/CI jobs share one store:
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 0/2 --cache-dir .grid
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 1/2 --cache-dir .grid
//!
//! # Merge: recombine shard outputs into the full grid-ordered table.
//! # Every cell must already be cached (zero simulations) — a missing
//! # cell means a shard did not run, and the merge fails loudly:
//! cargo run --release -p dmhpc-bench --bin repro -- merge smoke --cache-dir .grid
//! ```
//!
//! Table/figure output is printed and mirrored to `results/<id>.txt`;
//! grid/merge output lands in `results/<name>.*.{csv,json}`.

use dmhpc_bench::experiments::{self, RunOptions};
use dmhpc_sim::{
    EventQueueKind, ExperimentResults, ExperimentRunner, ExperimentSpec, Shard, SimError,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn usage() {
    eprintln!("usage: repro [--list] [--cache-dir DIR] [--threads N] [--queue heap|calendar] [--trace-out DIR] <id>... | all");
    eprintln!("       repro grid  <spec.json|smoke|smoke-contention|smoke-faults|smoke-service> [--shard i/n] [--cache-dir DIR] [--threads N] [--queue heap|calendar] [--trace-out DIR] [--faults|--service]");
    eprintln!("       repro merge <spec.json|smoke|smoke-contention|smoke-faults|smoke-service> --cache-dir DIR [--faults]");
    eprintln!("       --faults crosses the spec's grid with the built-in fault axis");
    eprintln!("       (fault-free baseline + node failures/drains/pool degradations)");
    eprintln!("       --service crosses the spec's grid with the built-in open-system");
    eprintln!("       service axis (closed-batch baseline + a streaming-arrival cell");
    eprintln!("       with O(1)-memory sketch metrics); grid mode only — use the");
    eprintln!("       smoke-service built-in for merges");
    eprintln!("       --trace-out DIR streams one <spec>.<cell>.jsonl event trace per");
    eprintln!("       simulated cell into DIR (constant memory per cell; hash-neutral,");
    eprintln!("       so result caches stay warm — cache-hit cells emit no trace)");
    eprintln!("ids: {}", experiments::all_ids().join(" "));
}

#[derive(Debug)]
struct Cli {
    mode: Mode,
    list: bool,
    cache_dir: Option<PathBuf>,
    shard: Option<Shard>,
    /// `None` = auto (one worker per core); validated ≥ 1 when given.
    threads: Option<usize>,
    queue: Option<EventQueueKind>,
    /// Stream per-cell event traces into this directory.
    trace_out: Option<PathBuf>,
    /// Cross the grid with the built-in fault axis (grid/merge modes).
    faults: bool,
    /// Cross the grid with the built-in open-system service axis (grid
    /// mode only).
    service: bool,
    args: Vec<String>,
}

#[derive(Debug)]
enum Mode {
    Tables,
    Grid,
    Merge,
}

fn parse_cli(raw: Vec<String>) -> Result<Cli, Box<dyn std::error::Error>> {
    let mut cli = Cli {
        mode: Mode::Tables,
        list: false,
        cache_dir: None,
        shard: None,
        threads: None,
        queue: None,
        trace_out: None,
        faults: false,
        service: false,
        args: Vec::new(),
    };
    let mut it = raw.into_iter().peekable();
    if let Some(first) = it.peek() {
        match first.as_str() {
            "grid" => {
                cli.mode = Mode::Grid;
                it.next();
            }
            "merge" => {
                cli.mode = Mode::Merge;
                it.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = it.next() {
        let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                     flag: &str|
         -> Result<String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match arg.as_str() {
            "--list" => cli.list = true,
            "--faults" => cli.faults = true,
            "--service" => cli.service = true,
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(value(&mut it, "--cache-dir")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value(&mut it, "--trace-out")?)),
            "--shard" => cli.shard = Some(Shard::parse(&value(&mut it, "--shard")?)?),
            "--threads" => {
                let n: usize = value(&mut it, "--threads")?.parse()?;
                if n == 0 {
                    // `0` used to silently mean "auto" — ambiguous enough
                    // that fan-out scripts passed it expecting "none".
                    return Err(
                        "--threads needs a positive worker count (omit the flag for one \
                         worker per core)"
                            .into(),
                    );
                }
                cli.threads = Some(n);
            }
            "--queue" => {
                cli.queue = Some(match value(&mut it, "--queue")?.as_str() {
                    "heap" => EventQueueKind::BinaryHeap,
                    "calendar" => EventQueueKind::Calendar,
                    other => {
                        return Err(format!(
                            "unknown event-queue backend {other:?} (expected heap or calendar)"
                        )
                        .into())
                    }
                });
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}").into());
            }
            _ => cli.args.push(arg),
        }
    }
    Ok(cli)
}

/// Resolve a grid-mode spec argument: a JSON file path, or one of the
/// built-in grids (`smoke`, `smoke-contention`). Compile errors surface as
/// `SimError` → non-zero exit.
fn load_spec(arg: &str) -> Result<ExperimentSpec, Box<dyn std::error::Error>> {
    match arg {
        "smoke" => return Ok(experiments::smoke_spec()?),
        "smoke-contention" => return Ok(experiments::smoke_contention_spec()?),
        "smoke-faults" => return Ok(experiments::smoke_faults_spec()?),
        "smoke-service" => return Ok(experiments::smoke_service_spec()?),
        _ => {}
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| SimError::io(format!("reading spec {arg}"), e))?;
    Ok(ExperimentSpec::from_json(&text)?)
}

fn export(results: &ExperimentResults, stem: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{stem}.csv"), results.to_csv())?;
    std::fs::write(format!("results/{stem}.json"), results.to_json())?;
    Ok(())
}

fn run_grid(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let Some(spec_arg) = cli.args.first() else {
        usage();
        return Err("grid mode needs a spec (a JSON file or `smoke`)".into());
    };
    if cli.faults && cli.service {
        return Err(
            "--faults does not combine with --service (fault scenarios and open-system \
             service runs are separate experiments)"
                .into(),
        );
    }
    if cli.list && cli.service {
        // The listing must show exactly the cells a spec compiles to; a
        // flag that rewrites the grid under --list invites listing one
        // grid and running another. Specs with a service axis (or the
        // smoke-service built-in) list their service cells natively.
        return Err(
            "--service does not apply to --list (list a spec with a service axis — \
             e.g. the smoke-service built-in — instead)"
                .into(),
        );
    }
    let mut spec = load_spec(spec_arg)?;
    if cli.faults {
        spec = experiments::with_default_faults(spec)?;
    }
    if cli.service {
        spec = experiments::with_default_service(spec)?;
    }
    if cli.list {
        // Listing never simulates, so execution knobs make no sense here:
        // refuse instead of silently ignoring them.
        if cli.threads.is_some() {
            return Err("--threads does not apply to --list (listing never simulates)".into());
        }
        if cli.queue.is_some() {
            return Err("--queue does not apply to --list (listing never simulates)".into());
        }
        if cli.trace_out.is_some() {
            return Err("--trace-out does not apply to --list (listing never simulates)".into());
        }
        // Listing compiles the grid, so an ill-formed spec fails loudly
        // here instead of being discovered mid-CI. With --shard, list
        // exactly the cells that shard would run.
        for (i, (key, hash)) in spec.cell_hashes()?.into_iter().enumerate() {
            if cli.shard.is_none_or(|s| s.owns(i)) {
                println!("{:016x}  {}", hash, key.label());
            }
        }
        return Ok(());
    }
    let mut runner = ExperimentRunner::with_threads(cli.threads.unwrap_or(0));
    if let Some(dir) = &cli.cache_dir {
        runner = runner.cache_dir(dir)?;
    }
    if let Some(kind) = cli.queue {
        runner = runner.event_queue(kind);
    }
    if let Some(dir) = &cli.trace_out {
        runner = runner.trace_dir(dir)?;
    }
    let started_at = std::time::SystemTime::now();
    let start = Instant::now();
    let (results, stem) = match cli.shard {
        Some(shard) => (
            runner.run_shard(&spec, shard)?,
            format!("{}.shard{}of{}", spec.name, shard.index(), shard.count()),
        ),
        None => (runner.run(&spec)?, spec.name.clone()),
    };
    export(&results, &stem)?;
    let stats = results.stats();
    println!(
        "== grid {} — {} cells ({} simulated, {} cached) [{:.1}s] -> results/{stem}.{{csv,json}}",
        spec.name,
        results.len(),
        stats.simulated,
        stats.cache_hits,
        start.elapsed().as_secs_f64()
    );
    if let Some(dir) = &cli.trace_out {
        verify_traces(dir, stats.simulated, started_at)?;
    }
    Ok(())
}

/// Check the streamed traces after a `--trace-out` run: every `.jsonl`
/// file must be non-empty and every line must parse as JSON. A run that
/// simulated cells must have written at least one *fresh* trace (mtime
/// at/after the run started, with a 1 s cushion for coarse filesystem
/// timestamps) — stale files from earlier runs are still validated but
/// cannot satisfy that check, and the totals distinguish the two so
/// smoke logs show what this invocation actually exported.
fn verify_traces(
    dir: &PathBuf,
    simulated: usize,
    started_at: std::time::SystemTime,
) -> Result<(), Box<dyn std::error::Error>> {
    let cutoff = started_at - std::time::Duration::from_secs(1);
    let mut files = 0usize;
    let mut fresh = 0usize;
    let mut events = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "jsonl") {
            continue;
        }
        // Stream line by line: traces can be arbitrarily large (that is
        // the point of the sink), so verification must not buffer one
        // wholesale.
        use std::io::BufRead as _;
        let reader = std::io::BufReader::new(std::fs::File::open(&path)?);
        let mut lines = 0usize;
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            dmhpc_sim::observe::parse_trace_line(&line)
                .map_err(|e| format!("trace {} line {}: {e}", path.display(), i + 1))?;
            lines += 1;
        }
        if lines == 0 {
            return Err(format!("trace {} is empty", path.display()).into());
        }
        files += 1;
        if entry.metadata()?.modified().is_ok_and(|m| m >= cutoff) {
            fresh += 1;
        }
        events += lines.saturating_sub(2); // header + footer
    }
    if simulated > 0 && fresh == 0 {
        return Err(format!(
            "--trace-out {}: {simulated} cells simulated but no trace files written by this run",
            dir.display()
        )
        .into());
    }
    println!(
        "== traces: {files} files ({fresh} from this run), {events} events verified -> {}",
        dir.display()
    );
    Ok(())
}

fn run_merge(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let Some(spec_arg) = cli.args.first() else {
        usage();
        return Err("merge mode needs a spec (a JSON file or `smoke`)".into());
    };
    if cli.cache_dir.is_none() {
        return Err("merge mode needs --cache-dir (where the shards stored cells)".into());
    }
    if cli.service {
        return Err(
            "--service only applies to grid mode (merge a spec that declares a service \
             axis — e.g. the smoke-service built-in — so it reconstructs the exact grid \
             the shards ran)"
                .into(),
        );
    }
    if cli.shard.is_some() {
        return Err(
            "--shard does not apply to merge mode (it always rebuilds the full grid)".into(),
        );
    }
    if cli.threads.is_some() {
        // Merge demands all-cache-hits and therefore simulates nothing:
        // a worker count here means the caller expected simulations.
        return Err(
            "--threads does not apply to merge mode (merge loads cells, never simulates; \
                    use `grid` to run missing cells)"
                .into(),
        );
    }
    if cli.queue.is_some() {
        return Err(
            "--queue does not apply to merge mode (merge loads cells, never simulates)".into(),
        );
    }
    if cli.trace_out.is_some() {
        return Err(
            "--trace-out does not apply to merge mode (merge loads cells, never simulates)".into(),
        );
    }
    let mut spec = load_spec(spec_arg)?;
    if cli.faults {
        // Merge must reconstruct exactly the grid the shards ran.
        spec = experiments::with_default_faults(spec)?;
    }
    let runner = ExperimentRunner::with_threads(1)
        .cache_dir(cli.cache_dir.as_ref().expect("checked above"))?;
    let start = Instant::now();
    let results = runner.run(&spec)?;
    let stats = results.stats();
    if stats.simulated > 0 {
        return Err(format!(
            "merge expected every cell cached, but {} of {} cell(s) were missing \
             (did all shards run against this cache dir?)",
            stats.simulated,
            results.len()
        )
        .into());
    }
    export(&results, &spec.name)?;
    println!(
        "== merge {} — {} cells, all from cache [{:.1}s] -> results/{}.{{csv,json}}",
        spec.name,
        results.len(),
        start.elapsed().as_secs_f64(),
        spec.name
    );
    Ok(())
}

fn run_tables(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    if cli.faults {
        return Err("--faults only applies to grid/merge modes (tables run fixed grids)".into());
    }
    if cli.service {
        return Err("--service only applies to grid mode (tables run fixed grids)".into());
    }
    if cli.shard.is_some() {
        // Silently running the *full* suite under a flag that promises a
        // slice would double work in fan-out scripts; refuse instead.
        return Err("--shard only applies to grid mode (tables always run whole grids)".into());
    }
    if cli.list {
        // Same contract as `grid --list`: listing never simulates, so
        // execution knobs are refused, not silently dropped.
        if cli.threads.is_some() {
            return Err("--threads does not apply to --list (listing never simulates)".into());
        }
        if cli.queue.is_some() {
            return Err("--queue does not apply to --list (listing never simulates)".into());
        }
        if cli.trace_out.is_some() {
            return Err("--trace-out does not apply to --list (listing never simulates)".into());
        }
        for id in experiments::all_ids() {
            println!("{id}");
        }
        // The built-in grid specs are part of the CLI surface; an
        // ill-formed one must fail the listing (and therefore CI), not
        // exit 0 silently.
        let smoke = experiments::smoke_spec()?;
        println!("grid: smoke ({} cells)", smoke.compile()?.len());
        let contention = experiments::smoke_contention_spec()?;
        println!(
            "grid: smoke-contention ({} cells)",
            contention.compile()?.len()
        );
        let faults = experiments::smoke_faults_spec()?;
        println!("grid: smoke-faults ({} cells)", faults.compile()?.len());
        let service = experiments::smoke_service_spec()?;
        println!("grid: smoke-service ({} cells)", service.compile()?.len());
        return Ok(());
    }
    let started_at = std::time::SystemTime::now();
    let ids: Vec<&str> = if cli.args.iter().any(|a| a == "all") {
        experiments::all_ids().to_vec()
    } else {
        cli.args.iter().map(String::as_str).collect()
    };
    let options = RunOptions {
        cache_dir: cli.cache_dir.clone(),
        threads: cli.threads.unwrap_or(0),
        event_queue: cli.queue,
        trace_dir: cli.trace_out.clone(),
    };

    std::fs::create_dir_all("results")?;
    for id in ids {
        let start = Instant::now();
        let Some(result) = experiments::run_with(id, &options)? else {
            return Err(format!("unknown experiment id {id:?} (try --list)").into());
        };
        let elapsed = start.elapsed();
        println!(
            "== {} — {} [{:.1}s]",
            result.id,
            result.title,
            elapsed.as_secs_f64()
        );
        println!("{}", result.body);
        let mut f = std::fs::File::create(format!("results/{}.txt", result.id))?;
        writeln!(f, "# {} — {}", result.id, result.title)?;
        f.write_all(result.body.as_bytes())?;
    }
    if let Some(dir) = &cli.trace_out {
        // Tables runs may be fully cache-served (zero simulations, zero
        // traces): validate whatever was written without demanding files.
        verify_traces(dir, 0, started_at)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return Ok(());
    }
    let cli = parse_cli(args)?;
    match cli.mode {
        Mode::Tables => run_tables(&cli),
        Mode::Grid => run_grid(&cli),
        Mode::Merge => run_merge(&cli),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, Box<dyn std::error::Error>> {
        parse_cli(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn threads_zero_is_rejected() {
        let err = parse(&["grid", "smoke", "--threads", "0"]).unwrap_err();
        assert!(err.to_string().contains("positive worker count"), "{err}");
        // Omitting the flag means auto; an explicit positive count parses.
        assert_eq!(parse(&["grid", "smoke"]).unwrap().threads, None);
        assert_eq!(
            parse(&["grid", "smoke", "--threads", "3"]).unwrap().threads,
            Some(3)
        );
    }

    #[test]
    fn queue_flag_parses_and_validates() {
        assert_eq!(
            parse(&["grid", "smoke", "--queue", "calendar"])
                .unwrap()
                .queue,
            Some(EventQueueKind::Calendar)
        );
        assert_eq!(
            parse(&["grid", "smoke", "--queue", "heap"]).unwrap().queue,
            Some(EventQueueKind::BinaryHeap)
        );
        let err = parse(&["grid", "smoke", "--queue", "fifo"]).unwrap_err();
        assert!(err.to_string().contains("unknown event-queue"), "{err}");
    }

    #[test]
    fn faults_flag_parses_and_is_grid_only() {
        assert!(parse(&["grid", "smoke", "--faults"]).unwrap().faults);
        assert!(!parse(&["grid", "smoke"]).unwrap().faults);
        assert!(
            parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--faults"])
                .unwrap()
                .faults
        );
        let err = run_tables(&parse(&["t1", "--faults"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("grid/merge"), "{err}");
        // Crossing a spec that already has a fault axis is refused.
        let err = experiments::with_default_faults(experiments::smoke_faults_spec().unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("already declares"), "{err}");
    }

    #[test]
    fn service_flag_parses_and_is_grid_only() {
        assert!(parse(&["grid", "smoke", "--service"]).unwrap().service);
        assert!(!parse(&["grid", "smoke"]).unwrap().service);
        // tables and merge modes never take the service cross.
        let err = run_tables(&parse(&["t1", "--service"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("only applies to grid"), "{err}");
        let cli = parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--service"]).unwrap();
        let err = run_merge(&cli).unwrap_err();
        assert!(err.to_string().contains("only applies to grid"), "{err}");
        // --list shows the spec's own grid, never a flag-rewritten one.
        let cli = parse(&["grid", "smoke", "--list", "--service"]).unwrap();
        let err = run_grid(&cli).unwrap_err();
        assert!(
            err.to_string()
                .contains("--service does not apply to --list"),
            "{err}"
        );
        // Fault storms and open-system streams are separate experiments.
        let cli = parse(&["grid", "smoke", "--faults", "--service"]).unwrap();
        let err = run_grid(&cli).unwrap_err();
        assert!(err.to_string().contains("does not combine"), "{err}");
        // Crossing a spec that already has a service axis is refused.
        let err = experiments::with_default_service(experiments::smoke_service_spec().unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("already declares"), "{err}");
    }

    #[test]
    fn smoke_service_grid_compiles_with_baseline_cells() {
        let spec = experiments::smoke_service_spec().unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(
            cells.len(),
            2 * experiments::smoke_spec().unwrap().cell_count()
        );
        let baseline = cells.iter().filter(|c| c.key.service.is_none()).count();
        assert_eq!(baseline * 2, cells.len(), "half the cells are closed");
    }

    #[test]
    fn smoke_faults_grid_compiles_with_baseline_cells() {
        let spec = experiments::smoke_faults_spec().unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(
            cells.len(),
            2 * experiments::smoke_contention_spec().unwrap().cell_count()
        );
        let baseline = cells.iter().filter(|c| c.key.fault.is_none()).count();
        assert_eq!(baseline * 2, cells.len(), "half the cells are fault-free");
    }

    #[test]
    fn trace_out_parses_and_is_simulation_only() {
        assert_eq!(
            parse(&["grid", "smoke", "--trace-out", "/tmp/t"])
                .unwrap()
                .trace_out,
            Some(PathBuf::from("/tmp/t"))
        );
        assert_eq!(parse(&["grid", "smoke"]).unwrap().trace_out, None);
        // merge never simulates: nothing would produce a trace.
        let cli = parse(&[
            "merge",
            "smoke",
            "--cache-dir",
            "/tmp/x",
            "--trace-out",
            "/tmp/t",
        ])
        .unwrap();
        let err = run_merge(&cli).unwrap_err();
        assert!(
            err.to_string().contains("--trace-out does not apply"),
            "{err}"
        );
        // Same for --list in both modes.
        let cli = parse(&["grid", "smoke", "--list", "--trace-out", "/tmp/t"]).unwrap();
        let err = run_grid(&cli).unwrap_err();
        assert!(
            err.to_string().contains("--trace-out does not apply"),
            "{err}"
        );
        let err = run_tables(&parse(&["--list", "--trace-out", "/tmp/t"]).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("--trace-out does not apply"),
            "{err}"
        );
    }

    #[test]
    fn conflicting_modes_and_flags_error() {
        // merge never simulates: worker counts and queue backends conflict.
        let cli = parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--threads", "2"]).unwrap();
        let err = run_merge(&cli).unwrap_err();
        assert!(
            err.to_string().contains("--threads does not apply"),
            "{err}"
        );
        let cli = parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--queue", "heap"]).unwrap();
        let err = run_merge(&cli).unwrap_err();
        assert!(err.to_string().contains("--queue does not apply"), "{err}");
        // merge still demands a cache dir and rejects shards.
        let err = run_merge(&parse(&["merge", "smoke"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("needs --cache-dir"), "{err}");
        let cli = parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--shard", "0/2"]).unwrap();
        let err = run_merge(&cli).unwrap_err();
        assert!(err.to_string().contains("--shard does not apply"), "{err}");
        // --list never simulates, in grid mode or tables mode.
        let cli = parse(&["grid", "smoke", "--list", "--threads", "2"]).unwrap();
        let err = run_grid(&cli).unwrap_err();
        assert!(
            err.to_string().contains("--threads does not apply"),
            "{err}"
        );
        let err = run_tables(&parse(&["--list", "--queue", "heap"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--queue does not apply"), "{err}");
        // tables mode still rejects --shard.
        let err = run_tables(&parse(&["t1", "--shard", "0/2"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("only applies to grid"), "{err}");
    }
}
