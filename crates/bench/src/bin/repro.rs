//! Reproduction harness: regenerate any table/figure of the evaluation,
//! and run/shard/merge declarative experiment grids at scale.
//!
//! ```text
//! # Tables and figures (optionally accelerated by a result cache):
//! cargo run --release -p dmhpc-bench --bin repro -- all
//! cargo run --release -p dmhpc-bench --bin repro -- --cache-dir .cache t2 f3 f6
//!
//! # Grid mode: run a spec (JSON file or the built-in `smoke` grid),
//! # optionally one shard of it, storing cells in the content-addressed
//! # cache so independent shard processes/CI jobs share one store:
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 0/2 --cache-dir .grid
//! cargo run --release -p dmhpc-bench --bin repro -- grid smoke --shard 1/2 --cache-dir .grid
//!
//! # Merge: recombine shard outputs into the full grid-ordered table.
//! # Every cell must already be cached (zero simulations) — a missing
//! # cell means a shard did not run, and the merge fails loudly:
//! cargo run --release -p dmhpc-bench --bin repro -- merge smoke --cache-dir .grid
//! ```
//!
//! Table/figure output is printed and mirrored to `results/<id>.txt`;
//! grid/merge output lands in `results/<name>.*.{csv,json}`.
//!
//! Internally every invocation is parsed ([`parse_cli`]) and then
//! *resolved* ([`RunMode::resolve`]) into one [`RunMode`] variant carrying
//! exactly the knobs that apply to it. Every flag × mode combination rule
//! lives in `resolve` — the run functions below cannot even see a flag
//! that is meaningless in their mode.

use dmhpc_bench::experiments::{self, RunOptions};
use dmhpc_sim::{
    EventQueueKind, ExperimentResults, ExperimentRunner, ExperimentSpec, Shard, SimError,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const BUILTIN_GRIDS: &str =
    "smoke|smoke-contention|smoke-faults|smoke-service|smoke-deadline|smoke-admission|smoke-fleet";

fn usage() {
    eprintln!("usage: repro [--list] [--cache-dir DIR] [--threads N] [--queue heap|calendar] [--trace-out DIR] <id>... | all");
    eprintln!("       repro grid  <spec.json|{BUILTIN_GRIDS}> [--shard i/n] [--cache-dir DIR] [--threads N] [--queue heap|calendar] [--trace-out DIR] [--faults|--service|--fleet]");
    eprintln!("       repro merge <spec.json|{BUILTIN_GRIDS}> --cache-dir DIR [--faults]");
    eprintln!("       --faults crosses the spec's grid with the built-in fault axis");
    eprintln!("       (fault-free baseline + node failures/drains/pool degradations)");
    eprintln!("       --service crosses the spec's grid with the built-in open-system");
    eprintln!("       service axis (closed-batch baseline + a streaming-arrival cell");
    eprintln!("       with O(1)-memory sketch metrics); grid mode only — use the");
    eprintln!("       smoke-service built-in for merges");
    eprintln!("       --fleet crosses the spec's grid with the built-in federation");
    eprintln!("       axis (no-fleet baseline + a 4-site epoch-synchronized fleet");
    eprintln!("       behind a least-queue-depth meta-scheduler); grid mode only —");
    eprintln!("       use the smoke-fleet built-in for merges. Federated cells run");
    eprintln!("       observation-free, so --fleet does not combine with --trace-out");
    eprintln!("       --trace-out DIR streams one <spec>.<cell>.jsonl event trace per");
    eprintln!("       simulated cell into DIR (constant memory per cell; hash-neutral,");
    eprintln!("       so result caches stay warm — cache-hit cells emit no trace)");
    eprintln!("ids: {}", experiments::all_ids().join(" "));
}

/// Raw flags exactly as given — parsed, but not yet checked against each
/// other. [`RunMode::resolve`] turns this into something runnable.
#[derive(Debug)]
struct Cli {
    mode: Mode,
    list: bool,
    cache_dir: Option<PathBuf>,
    shard: Option<Shard>,
    /// `None` = auto (one worker per core); validated ≥ 1 when given.
    threads: Option<usize>,
    queue: Option<EventQueueKind>,
    /// Stream per-cell event traces into this directory.
    trace_out: Option<PathBuf>,
    /// Cross the grid with the built-in fault axis (grid/merge modes).
    faults: bool,
    /// Cross the grid with the built-in open-system service axis (grid
    /// mode only).
    service: bool,
    /// Cross the grid with the built-in federation axis (grid mode only).
    fleet: bool,
    args: Vec<String>,
}

#[derive(Debug)]
enum Mode {
    Tables,
    Grid,
    Merge,
}

/// Everything the simulated-run modes share: cache, workers, event-queue
/// backend, trace export.
#[derive(Debug)]
struct ExecKnobs {
    cache_dir: Option<PathBuf>,
    /// `0` = auto (one worker per core).
    threads: usize,
    queue: Option<EventQueueKind>,
    trace_out: Option<PathBuf>,
}

/// One fully validated invocation. Each variant carries exactly the knobs
/// that apply to it; every rejected flag combination is refused in
/// [`RunMode::resolve`] — the single source of truth for the CLI's
/// flag × mode matrix (exhaustively pinned by
/// `rejected_flag_combinations`).
#[derive(Debug)]
enum RunMode {
    /// `repro --list`: print experiment ids and the built-in grid
    /// inventory. Never simulates.
    ListTables,
    /// `repro <id>... | all`: regenerate tables/figures.
    Tables {
        ids: Vec<String>,
        options: RunOptions,
    },
    /// `repro grid <spec> --list`: print the cells (optionally one
    /// shard's) the spec compiles to. Never simulates.
    ListGrid {
        spec_arg: String,
        shard: Option<Shard>,
        faults: bool,
    },
    /// `repro grid <spec>`: run a grid, optionally one shard of it.
    Grid {
        spec_arg: String,
        shard: Option<Shard>,
        faults: bool,
        service: bool,
        fleet: bool,
        exec: ExecKnobs,
    },
    /// `repro merge <spec>`: recombine a fully cached grid.
    Merge {
        spec_arg: String,
        cache_dir: PathBuf,
        faults: bool,
    },
}

impl RunMode {
    /// The one place flag combinations are accepted or refused. Checks
    /// keep the historical order so every long-standing error message
    /// (and the CI scripts grepping for them) is preserved verbatim.
    fn resolve(cli: Cli) -> Result<RunMode, String> {
        // Listing never simulates, in any mode: execution knobs are
        // refused, not silently dropped.
        fn reject_exec_knobs_under_list(cli: &Cli) -> Result<(), String> {
            if cli.threads.is_some() {
                return Err("--threads does not apply to --list (listing never simulates)".into());
            }
            if cli.queue.is_some() {
                return Err("--queue does not apply to --list (listing never simulates)".into());
            }
            if cli.trace_out.is_some() {
                return Err(
                    "--trace-out does not apply to --list (listing never simulates)".into(),
                );
            }
            Ok(())
        }
        match cli.mode {
            Mode::Grid => {
                let Some(spec_arg) = cli.args.first().cloned() else {
                    return Err("grid mode needs a spec (a JSON file or `smoke`)".into());
                };
                if cli.faults && cli.service {
                    return Err(
                        "--faults does not combine with --service (fault scenarios and \
                         open-system service runs are separate experiments)"
                            .into(),
                    );
                }
                if cli.fleet && cli.faults {
                    return Err(
                        "--fleet does not combine with --faults (federated fleet scenarios \
                         and fault scenarios are separate experiments)"
                            .into(),
                    );
                }
                if cli.fleet && cli.service {
                    return Err(
                        "--fleet does not combine with --service (federated fleet scenarios \
                         and open-system service runs are separate experiments)"
                            .into(),
                    );
                }
                if cli.fleet && cli.trace_out.is_some() {
                    // Federated cells run observation-free (no per-event
                    // probes cross site engines), so a trace-out run over
                    // a fleet cross would promise traces it cannot write.
                    return Err(
                        "--trace-out does not combine with --fleet (federated cells run \
                         observation-free and emit no traces; trace the fleet-free grid \
                         instead)"
                            .into(),
                    );
                }
                if cli.list {
                    if cli.fleet {
                        return Err(
                            "--fleet does not apply to --list (list a spec with a fleet \
                             axis — e.g. the smoke-fleet built-in — instead)"
                                .into(),
                        );
                    }
                    // The listing must show exactly the cells a spec
                    // compiles to; a flag that rewrites the grid under
                    // --list invites listing one grid and running
                    // another. Specs with a service axis (or the
                    // smoke-service / smoke-deadline built-ins) list
                    // their service cells natively. (--faults is the
                    // historical exception: the listing applies the same
                    // cross the run would.)
                    if cli.service {
                        return Err(
                            "--service does not apply to --list (list a spec with a service \
                             axis — e.g. the smoke-service built-in — instead)"
                                .into(),
                        );
                    }
                    reject_exec_knobs_under_list(&cli)?;
                    return Ok(RunMode::ListGrid {
                        spec_arg,
                        shard: cli.shard,
                        faults: cli.faults,
                    });
                }
                Ok(RunMode::Grid {
                    spec_arg,
                    shard: cli.shard,
                    faults: cli.faults,
                    service: cli.service,
                    fleet: cli.fleet,
                    exec: ExecKnobs {
                        cache_dir: cli.cache_dir,
                        threads: cli.threads.unwrap_or(0),
                        queue: cli.queue,
                        trace_out: cli.trace_out,
                    },
                })
            }
            Mode::Merge => {
                let Some(spec_arg) = cli.args.first().cloned() else {
                    return Err("merge mode needs a spec (a JSON file or `smoke`)".into());
                };
                if cli.cache_dir.is_none() {
                    return Err(
                        "merge mode needs --cache-dir (where the shards stored cells)".to_string(),
                    );
                }
                if cli.service {
                    return Err(
                        "--service only applies to grid mode (merge a spec that declares a \
                         service axis — e.g. the smoke-service built-in — so it reconstructs \
                         the exact grid the shards ran)"
                            .into(),
                    );
                }
                if cli.fleet {
                    return Err(
                        "--fleet only applies to grid mode (merge a spec that declares a \
                         fleet axis — e.g. the smoke-fleet built-in — so it reconstructs \
                         the exact grid the shards ran)"
                            .into(),
                    );
                }
                if cli.shard.is_some() {
                    return Err(
                        "--shard does not apply to merge mode (it always rebuilds the full grid)"
                            .into(),
                    );
                }
                if cli.threads.is_some() {
                    // Merge demands all-cache-hits and therefore
                    // simulates nothing: a worker count here means the
                    // caller expected simulations.
                    return Err(
                        "--threads does not apply to merge mode (merge loads cells, never \
                         simulates; use `grid` to run missing cells)"
                            .into(),
                    );
                }
                if cli.queue.is_some() {
                    return Err(
                        "--queue does not apply to merge mode (merge loads cells, never \
                         simulates)"
                            .into(),
                    );
                }
                if cli.trace_out.is_some() {
                    return Err(
                        "--trace-out does not apply to merge mode (merge loads cells, never \
                         simulates)"
                            .into(),
                    );
                }
                Ok(RunMode::Merge {
                    spec_arg,
                    cache_dir: cli.cache_dir.expect("checked above"),
                    faults: cli.faults,
                })
            }
            Mode::Tables => {
                if cli.faults {
                    return Err(
                        "--faults only applies to grid/merge modes (tables run fixed grids)".into(),
                    );
                }
                if cli.service {
                    return Err(
                        "--service only applies to grid mode (tables run fixed grids)".into(),
                    );
                }
                if cli.fleet {
                    return Err("--fleet only applies to grid mode (tables run fixed grids)".into());
                }
                if cli.shard.is_some() {
                    // Silently running the *full* suite under a flag
                    // that promises a slice would double work in fan-out
                    // scripts; refuse instead.
                    return Err(
                        "--shard only applies to grid mode (tables always run whole grids)".into(),
                    );
                }
                if cli.list {
                    reject_exec_knobs_under_list(&cli)?;
                    return Ok(RunMode::ListTables);
                }
                Ok(RunMode::Tables {
                    ids: cli.args,
                    options: RunOptions {
                        cache_dir: cli.cache_dir,
                        threads: cli.threads.unwrap_or(0),
                        event_queue: cli.queue,
                        trace_dir: cli.trace_out,
                    },
                })
            }
        }
    }
}

fn parse_cli(raw: Vec<String>) -> Result<Cli, Box<dyn std::error::Error>> {
    let mut cli = Cli {
        mode: Mode::Tables,
        list: false,
        cache_dir: None,
        shard: None,
        threads: None,
        queue: None,
        trace_out: None,
        faults: false,
        service: false,
        fleet: false,
        args: Vec::new(),
    };
    let mut it = raw.into_iter().peekable();
    if let Some(first) = it.peek() {
        match first.as_str() {
            "grid" => {
                cli.mode = Mode::Grid;
                it.next();
            }
            "merge" => {
                cli.mode = Mode::Merge;
                it.next();
            }
            _ => {}
        }
    }
    while let Some(arg) = it.next() {
        let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                     flag: &str|
         -> Result<String, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match arg.as_str() {
            "--list" => cli.list = true,
            "--faults" => cli.faults = true,
            "--service" => cli.service = true,
            "--fleet" => cli.fleet = true,
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(value(&mut it, "--cache-dir")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value(&mut it, "--trace-out")?)),
            "--shard" => cli.shard = Some(Shard::parse(&value(&mut it, "--shard")?)?),
            "--threads" => {
                let n: usize = value(&mut it, "--threads")?.parse()?;
                if n == 0 {
                    // `0` used to silently mean "auto" — ambiguous enough
                    // that fan-out scripts passed it expecting "none".
                    return Err(
                        "--threads needs a positive worker count (omit the flag for one \
                         worker per core)"
                            .into(),
                    );
                }
                cli.threads = Some(n);
            }
            "--queue" => {
                cli.queue = Some(match value(&mut it, "--queue")?.as_str() {
                    "heap" => EventQueueKind::BinaryHeap,
                    "calendar" => EventQueueKind::Calendar,
                    other => {
                        return Err(format!(
                            "unknown event-queue backend {other:?} (expected heap or calendar)"
                        )
                        .into())
                    }
                });
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}").into());
            }
            _ => cli.args.push(arg),
        }
    }
    Ok(cli)
}

/// Resolve a grid-mode spec argument: a JSON file path, or one of the
/// built-in grids (`smoke`, `smoke-contention`, …). Compile errors surface
/// as `SimError` → non-zero exit.
fn load_spec(arg: &str) -> Result<ExperimentSpec, Box<dyn std::error::Error>> {
    match arg {
        "smoke" => return Ok(experiments::smoke_spec()?),
        "smoke-contention" => return Ok(experiments::smoke_contention_spec()?),
        "smoke-faults" => return Ok(experiments::smoke_faults_spec()?),
        "smoke-service" => return Ok(experiments::smoke_service_spec()?),
        "smoke-deadline" => return Ok(experiments::smoke_deadline_spec()?),
        "smoke-admission" => return Ok(experiments::smoke_admission_spec()?),
        "smoke-fleet" => return Ok(experiments::smoke_fleet_spec()?),
        _ => {}
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| SimError::io(format!("reading spec {arg}"), e))?;
    Ok(ExperimentSpec::from_json(&text)?)
}

fn export(results: &ExperimentResults, stem: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{stem}.csv"), results.to_csv())?;
    std::fs::write(format!("results/{stem}.json"), results.to_json())?;
    Ok(())
}

fn list_grid(
    spec_arg: &str,
    shard: Option<Shard>,
    faults: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = load_spec(spec_arg)?;
    if faults {
        spec = experiments::with_default_faults(spec)?;
    }
    // Listing compiles the grid, so an ill-formed spec fails loudly here
    // instead of being discovered mid-CI. With --shard, list exactly the
    // cells that shard would run.
    for (i, (key, hash)) in spec.cell_hashes()?.into_iter().enumerate() {
        if shard.is_none_or(|s| s.owns(i)) {
            println!("{:016x}  {}", hash, key.label());
        }
    }
    Ok(())
}

fn run_grid(
    spec_arg: &str,
    shard: Option<Shard>,
    faults: bool,
    service: bool,
    fleet: bool,
    exec: &ExecKnobs,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = load_spec(spec_arg)?;
    if faults {
        spec = experiments::with_default_faults(spec)?;
    }
    if service {
        spec = experiments::with_default_service(spec)?;
    }
    if fleet {
        spec = experiments::with_default_fleet(spec)?;
    }
    let mut runner = ExperimentRunner::with_threads(exec.threads);
    if let Some(dir) = &exec.cache_dir {
        runner = runner.cache_dir(dir)?;
    }
    if let Some(kind) = exec.queue {
        runner = runner.event_queue(kind);
    }
    if let Some(dir) = &exec.trace_out {
        runner = runner.trace_dir(dir)?;
    }
    let started_at = std::time::SystemTime::now();
    let start = Instant::now();
    let (results, stem) = match shard {
        Some(shard) => (
            runner.run_shard(&spec, shard)?,
            format!("{}.shard{}of{}", spec.name, shard.index(), shard.count()),
        ),
        None => (runner.run(&spec)?, spec.name.clone()),
    };
    export(&results, &stem)?;
    let stats = results.stats();
    println!(
        "== grid {} — {} cells ({} simulated, {} cached) [{:.1}s] -> results/{stem}.{{csv,json}}",
        spec.name,
        results.len(),
        stats.simulated,
        stats.cache_hits,
        start.elapsed().as_secs_f64()
    );
    if let Some(dir) = &exec.trace_out {
        verify_traces(dir, stats.simulated, started_at)?;
    }
    Ok(())
}

/// Check the streamed traces after a `--trace-out` run: every `.jsonl`
/// file must be non-empty and every line must parse as JSON. A run that
/// simulated cells must have written at least one *fresh* trace (mtime
/// at/after the run started, with a 1 s cushion for coarse filesystem
/// timestamps) — stale files from earlier runs are still validated but
/// cannot satisfy that check, and the totals distinguish the two so
/// smoke logs show what this invocation actually exported.
fn verify_traces(
    dir: &PathBuf,
    simulated: usize,
    started_at: std::time::SystemTime,
) -> Result<(), Box<dyn std::error::Error>> {
    let cutoff = started_at - std::time::Duration::from_secs(1);
    let mut files = 0usize;
    let mut fresh = 0usize;
    let mut events = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "jsonl") {
            continue;
        }
        // Stream line by line: traces can be arbitrarily large (that is
        // the point of the sink), so verification must not buffer one
        // wholesale.
        use std::io::BufRead as _;
        let reader = std::io::BufReader::new(std::fs::File::open(&path)?);
        let mut lines = 0usize;
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            dmhpc_sim::observe::parse_trace_line(&line)
                .map_err(|e| format!("trace {} line {}: {e}", path.display(), i + 1))?;
            lines += 1;
        }
        if lines == 0 {
            return Err(format!("trace {} is empty", path.display()).into());
        }
        files += 1;
        if entry.metadata()?.modified().is_ok_and(|m| m >= cutoff) {
            fresh += 1;
        }
        events += lines.saturating_sub(2); // header + footer
    }
    if simulated > 0 && fresh == 0 {
        return Err(format!(
            "--trace-out {}: {simulated} cells simulated but no trace files written by this run",
            dir.display()
        )
        .into());
    }
    println!(
        "== traces: {files} files ({fresh} from this run), {events} events verified -> {}",
        dir.display()
    );
    Ok(())
}

fn run_merge(
    spec_arg: &str,
    cache_dir: &PathBuf,
    faults: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = load_spec(spec_arg)?;
    if faults {
        // Merge must reconstruct exactly the grid the shards ran.
        spec = experiments::with_default_faults(spec)?;
    }
    let runner = ExperimentRunner::with_threads(1).cache_dir(cache_dir)?;
    let start = Instant::now();
    let results = runner.run(&spec)?;
    let stats = results.stats();
    if stats.simulated > 0 {
        return Err(format!(
            "merge expected every cell cached, but {} of {} cell(s) were missing \
             (did all shards run against this cache dir?)",
            stats.simulated,
            results.len()
        )
        .into());
    }
    export(&results, &spec.name)?;
    println!(
        "== merge {} — {} cells, all from cache [{:.1}s] -> results/{}.{{csv,json}}",
        spec.name,
        results.len(),
        start.elapsed().as_secs_f64(),
        spec.name
    );
    Ok(())
}

fn list_tables() -> Result<(), Box<dyn std::error::Error>> {
    for id in experiments::all_ids() {
        println!("{id}");
    }
    // The built-in grid specs are part of the CLI surface; an ill-formed
    // one must fail the listing (and therefore CI), not exit 0 silently.
    let smoke = experiments::smoke_spec()?;
    println!("grid: smoke ({} cells)", smoke.compile()?.len());
    let contention = experiments::smoke_contention_spec()?;
    println!(
        "grid: smoke-contention ({} cells)",
        contention.compile()?.len()
    );
    let faults = experiments::smoke_faults_spec()?;
    println!("grid: smoke-faults ({} cells)", faults.compile()?.len());
    let service = experiments::smoke_service_spec()?;
    println!("grid: smoke-service ({} cells)", service.compile()?.len());
    let deadline = experiments::smoke_deadline_spec()?;
    println!("grid: smoke-deadline ({} cells)", deadline.compile()?.len());
    let admission = experiments::smoke_admission_spec()?;
    println!(
        "grid: smoke-admission ({} cells)",
        admission.compile()?.len()
    );
    let fleet = experiments::smoke_fleet_spec()?;
    println!("grid: smoke-fleet ({} cells)", fleet.compile()?.len());
    Ok(())
}

fn run_tables(ids: &[String], options: &RunOptions) -> Result<(), Box<dyn std::error::Error>> {
    let started_at = std::time::SystemTime::now();
    let ids: Vec<&str> = if ids.iter().any(|a| a == "all") {
        experiments::all_ids().to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    std::fs::create_dir_all("results")?;
    for id in ids {
        let start = Instant::now();
        let Some(result) = experiments::run_with(id, options)? else {
            return Err(format!("unknown experiment id {id:?} (try --list)").into());
        };
        let elapsed = start.elapsed();
        println!(
            "== {} — {} [{:.1}s]",
            result.id,
            result.title,
            elapsed.as_secs_f64()
        );
        println!("{}", result.body);
        let mut f = std::fs::File::create(format!("results/{}.txt", result.id))?;
        writeln!(f, "# {} — {}", result.id, result.title)?;
        f.write_all(result.body.as_bytes())?;
    }
    if let Some(dir) = &options.trace_dir {
        // Tables runs may be fully cache-served (zero simulations, zero
        // traces): validate whatever was written without demanding files.
        verify_traces(dir, 0, started_at)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return Ok(());
    }
    let mode = match RunMode::resolve(parse_cli(args)?) {
        Ok(mode) => mode,
        Err(e) => {
            usage();
            return Err(e.into());
        }
    };
    match mode {
        RunMode::ListTables => list_tables(),
        RunMode::Tables { ids, options } => run_tables(&ids, &options),
        RunMode::ListGrid {
            spec_arg,
            shard,
            faults,
        } => list_grid(&spec_arg, shard, faults),
        RunMode::Grid {
            spec_arg,
            shard,
            faults,
            service,
            fleet,
            exec,
        } => run_grid(&spec_arg, shard, faults, service, fleet, &exec),
        RunMode::Merge {
            spec_arg,
            cache_dir,
            faults,
        } => run_merge(&spec_arg, &cache_dir, faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, Box<dyn std::error::Error>> {
        parse_cli(args.iter().map(|s| s.to_string()).collect())
    }

    fn resolve(args: &[&str]) -> Result<RunMode, String> {
        RunMode::resolve(parse(args).unwrap())
    }

    /// The whole rejected-combination matrix, in one table: every flag
    /// that is meaningless in a mode is refused by [`RunMode::resolve`]
    /// with its long-standing message. Adding a flag or a mode means
    /// extending this table.
    #[test]
    fn rejected_flag_combinations() {
        let table: &[(&[&str], &str)] = &[
            // grid mode
            (&["grid"], "grid mode needs a spec"),
            (
                &["grid", "smoke", "--faults", "--service"],
                "--faults does not combine with --service",
            ),
            (
                &["grid", "smoke", "--list", "--service"],
                "--service does not apply to --list",
            ),
            (
                &["grid", "smoke", "--fleet", "--faults"],
                "--fleet does not combine with --faults",
            ),
            (
                &["grid", "smoke", "--fleet", "--service"],
                "--fleet does not combine with --service",
            ),
            (
                &["grid", "smoke", "--fleet", "--trace-out", "/tmp/t"],
                "--trace-out does not combine with --fleet",
            ),
            (
                &["grid", "smoke", "--list", "--fleet"],
                "--fleet does not apply to --list",
            ),
            (
                &["grid", "smoke", "--list", "--threads", "2"],
                "--threads does not apply to --list (listing never simulates)",
            ),
            (
                &["grid", "smoke", "--list", "--queue", "heap"],
                "--queue does not apply to --list (listing never simulates)",
            ),
            (
                &["grid", "smoke", "--list", "--trace-out", "/tmp/t"],
                "--trace-out does not apply to --list (listing never simulates)",
            ),
            // merge mode
            (&["merge"], "merge mode needs a spec"),
            (&["merge", "smoke"], "merge mode needs --cache-dir"),
            (
                &["merge", "smoke", "--cache-dir", "/tmp/x", "--service"],
                "--service only applies to grid mode",
            ),
            (
                &["merge", "smoke", "--cache-dir", "/tmp/x", "--fleet"],
                "--fleet only applies to grid mode",
            ),
            (
                &["merge", "smoke", "--cache-dir", "/tmp/x", "--shard", "0/2"],
                "--shard does not apply to merge mode",
            ),
            (
                &["merge", "smoke", "--cache-dir", "/tmp/x", "--threads", "2"],
                "--threads does not apply to merge mode",
            ),
            (
                &["merge", "smoke", "--cache-dir", "/tmp/x", "--queue", "heap"],
                "--queue does not apply to merge mode",
            ),
            (
                &[
                    "merge",
                    "smoke",
                    "--cache-dir",
                    "/tmp/x",
                    "--trace-out",
                    "/tmp/t",
                ],
                "--trace-out does not apply to merge mode",
            ),
            // tables mode
            (
                &["t1", "--faults"],
                "--faults only applies to grid/merge modes",
            ),
            (&["t1", "--service"], "--service only applies to grid mode"),
            (&["t1", "--fleet"], "--fleet only applies to grid mode"),
            (
                &["t1", "--shard", "0/2"],
                "--shard only applies to grid mode",
            ),
            (
                &["--list", "--threads", "2"],
                "--threads does not apply to --list (listing never simulates)",
            ),
            (
                &["--list", "--queue", "heap"],
                "--queue does not apply to --list (listing never simulates)",
            ),
            (
                &["--list", "--trace-out", "/tmp/t"],
                "--trace-out does not apply to --list (listing never simulates)",
            ),
        ];
        for (args, want) in table {
            let err = resolve(args).unwrap_err();
            assert!(err.contains(want), "{args:?}: {err}");
        }
    }

    /// Valid combinations all resolve — including the ones that pair
    /// flags the rejected table refuses in *other* modes.
    #[test]
    fn accepted_flag_combinations_resolve() {
        let accepted: &[&[&str]] = &[
            &["t1", "t2"],
            &["all", "--cache-dir", "/tmp/x", "--threads", "2"],
            &["--list"],
            &["--list", "--cache-dir", "/tmp/x"],
            &["grid", "smoke"],
            &["grid", "smoke-deadline", "--shard", "1/2", "--threads", "4"],
            &["grid", "smoke", "--faults", "--trace-out", "/tmp/t"],
            &["grid", "smoke", "--service", "--queue", "calendar"],
            &["grid", "smoke", "--fleet"],
            &[
                "grid",
                "smoke-fleet",
                "--shard",
                "0/2",
                "--cache-dir",
                "/tmp/x",
            ],
            &["merge", "smoke-fleet", "--cache-dir", "/tmp/x"],
            &["grid", "smoke", "--list"],
            &["grid", "smoke", "--list", "--shard", "0/2", "--faults"],
            &["merge", "smoke", "--cache-dir", "/tmp/x"],
            &["merge", "smoke", "--cache-dir", "/tmp/x", "--faults"],
        ];
        for args in accepted {
            resolve(args).unwrap_or_else(|e| panic!("{args:?} should resolve: {e}"));
        }
    }

    #[test]
    fn resolved_modes_carry_only_their_knobs() {
        match resolve(&["grid", "smoke-deadline", "--shard", "0/2", "--threads", "3"]).unwrap() {
            RunMode::Grid {
                spec_arg,
                shard,
                exec,
                ..
            } => {
                assert_eq!(spec_arg, "smoke-deadline");
                assert_eq!(shard.unwrap().index(), 0);
                assert_eq!(exec.threads, 3);
            }
            other => panic!("expected Grid, got {other:?}"),
        }
        match resolve(&["grid", "smoke"]).unwrap() {
            RunMode::Grid { exec, .. } => assert_eq!(exec.threads, 0, "omitted flag means auto"),
            other => panic!("expected Grid, got {other:?}"),
        }
        match resolve(&["merge", "smoke", "--cache-dir", "/tmp/x", "--faults"]).unwrap() {
            RunMode::Merge {
                cache_dir, faults, ..
            } => {
                assert_eq!(cache_dir, PathBuf::from("/tmp/x"));
                assert!(faults);
            }
            other => panic!("expected Merge, got {other:?}"),
        }
        match resolve(&["--list"]).unwrap() {
            RunMode::ListTables => {}
            other => panic!("expected ListTables, got {other:?}"),
        }
        match resolve(&["t1", "all"]).unwrap() {
            RunMode::Tables { ids, options } => {
                assert_eq!(ids, ["t1", "all"]);
                assert_eq!(options.threads, 0);
            }
            other => panic!("expected Tables, got {other:?}"),
        }
    }

    #[test]
    fn threads_zero_is_rejected() {
        let err = parse(&["grid", "smoke", "--threads", "0"]).unwrap_err();
        assert!(err.to_string().contains("positive worker count"), "{err}");
        // Omitting the flag means auto; an explicit positive count parses.
        assert_eq!(parse(&["grid", "smoke"]).unwrap().threads, None);
        assert_eq!(
            parse(&["grid", "smoke", "--threads", "3"]).unwrap().threads,
            Some(3)
        );
    }

    #[test]
    fn queue_flag_parses_and_validates() {
        assert_eq!(
            parse(&["grid", "smoke", "--queue", "calendar"])
                .unwrap()
                .queue,
            Some(EventQueueKind::Calendar)
        );
        assert_eq!(
            parse(&["grid", "smoke", "--queue", "heap"]).unwrap().queue,
            Some(EventQueueKind::BinaryHeap)
        );
        let err = parse(&["grid", "smoke", "--queue", "fifo"]).unwrap_err();
        assert!(err.to_string().contains("unknown event-queue"), "{err}");
    }

    #[test]
    fn faults_flag_parses_and_crossing_twice_is_refused() {
        assert!(parse(&["grid", "smoke", "--faults"]).unwrap().faults);
        assert!(!parse(&["grid", "smoke"]).unwrap().faults);
        assert!(
            parse(&["merge", "smoke", "--cache-dir", "/tmp/x", "--faults"])
                .unwrap()
                .faults
        );
        // Crossing a spec that already has a fault axis is refused.
        let err = experiments::with_default_faults(experiments::smoke_faults_spec().unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("already declares"), "{err}");
        // Same for the service cross.
        let err = experiments::with_default_service(experiments::smoke_service_spec().unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("already declares"), "{err}");
    }

    #[test]
    fn smoke_service_grid_compiles_with_baseline_cells() {
        let spec = experiments::smoke_service_spec().unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(
            cells.len(),
            2 * experiments::smoke_spec().unwrap().cell_count()
        );
        let baseline = cells.iter().filter(|c| c.key.service.is_none()).count();
        assert_eq!(baseline * 2, cells.len(), "half the cells are closed");
    }

    #[test]
    fn smoke_faults_grid_compiles_with_baseline_cells() {
        let spec = experiments::smoke_faults_spec().unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(
            cells.len(),
            2 * experiments::smoke_contention_spec().unwrap().cell_count()
        );
        let baseline = cells.iter().filter(|c| c.key.fault.is_none()).count();
        assert_eq!(baseline * 2, cells.len(), "half the cells are fault-free");
    }

    #[test]
    fn smoke_fleet_grid_compiles_with_baseline_cells() {
        let spec = experiments::smoke_fleet_spec().unwrap();
        let cells = spec.compile().unwrap();
        assert_eq!(
            cells.len(),
            2 * experiments::smoke_spec().unwrap().cell_count()
        );
        let baseline = cells.iter().filter(|c| c.key.fleet.is_none()).count();
        assert_eq!(baseline * 2, cells.len(), "half the cells are fleet-free");
        // Crossing a spec that already has a fleet axis is refused.
        let err =
            experiments::with_default_fleet(experiments::smoke_fleet_spec().unwrap()).unwrap_err();
        assert!(err.to_string().contains("already declares"), "{err}");
    }

    #[test]
    fn smoke_fleet_is_a_builtin_spec() {
        let spec = load_spec("smoke-fleet").unwrap();
        assert_eq!(spec.name, "smoke-fleet");
        assert_eq!(spec.cell_count(), 16);
    }

    #[test]
    fn smoke_deadline_is_a_builtin_spec() {
        let spec = load_spec("smoke-deadline").unwrap();
        assert_eq!(spec.name, "smoke-deadline");
        assert_eq!(spec.cell_count(), 8);
    }

    #[test]
    fn smoke_admission_is_a_builtin_spec() {
        let spec = load_spec("smoke-admission").unwrap();
        assert_eq!(spec.name, "smoke-admission");
        assert_eq!(spec.cell_count(), 8);
        // The admission/placement knobs must keep cell labels (and hence
        // cache keys) distinct across the four scheduler columns.
        let cells = spec.compile().unwrap();
        let labels: std::collections::BTreeSet<_> = cells.iter().map(|c| c.key.label()).collect();
        assert_eq!(labels.len(), cells.len(), "every cell label is unique");
    }

    #[test]
    fn trace_out_parses() {
        assert_eq!(
            parse(&["grid", "smoke", "--trace-out", "/tmp/t"])
                .unwrap()
                .trace_out,
            Some(PathBuf::from("/tmp/t"))
        );
        assert_eq!(parse(&["grid", "smoke"]).unwrap().trace_out, None);
    }
}
