//! CI bench-regression gate for the experiment runner and the engine
//! kernel.
//!
//! Reads the JSON-lines file the criterion-shim emits when `BENCH_JSON`
//! is set (one `{"name", "mean_ns", "std_ns"}` object per benchmark) and
//! compares two ratios against a checked-in baseline:
//!
//! * **runner overhead** — the whole declarative path
//!   (`experiment_runner/run/1`) over the same cells simulated by hand
//!   (`experiment_runner/raw_cells`);
//! * **kernel backend** — engine throughput on the calendar event queue
//!   (`engine_kernel/calendar`) over the binary heap
//!   (`engine_kernel/heap`), so the opt-in backend cannot silently rot;
//! * **fault path** — the same workload under the canned fault storm
//!   (`engine_faults/storm`) over its fault-free run
//!   (`engine_faults/none`), bounding what the availability subsystem may
//!   cost (it is dead code on fault-free runs; under faults the overhead
//!   is interruption work plus the redone jobs, not a per-event tax);
//! * **observer overhead** — the same workload with the full extra
//!   observer set attached (`engine_observers/full`: streaming JSONL
//!   trace sink + sampled series probe + event counter) over the default
//!   observer set alone (`engine_observers/none`), bounding what
//!   attaching observers may cost per event;
//! * **service sketch path** — an open-system run streaming its jobs
//!   from the arrival source into O(1)-memory sketch metrics
//!   (`engine_service/sketch`) over a closed batch of the same size on
//!   the record-keeping job-stats path (`engine_service/jobstats`),
//!   bounding what pull-based admission plus the sketch observer may
//!   cost relative to the path they replace;
//! * **deadline ordering** — the same deadline-stamped workload under
//!   EDF ordering (`engine_deadline/edf`) over FCFS on identical stamps
//!   (`engine_deadline/fcfs`), bounding what deadline-aware queue
//!   ordering may cost per run (the stamps are data the pass comparator
//!   reads, never extra simulation work);
//! * **admission control** — the same deadline-stamped workload under
//!   the full deadline stack — laxity-aware placement plus infeasibility
//!   rejection (`engine_admission/guarded`) — over plain EDF on the same
//!   stamps (`engine_admission/edf`), bounding what the per-admission
//!   feasibility probe and the laxity-priced placement scan may cost;
//! * **federation scaling** — the 4-site fleet advanced by one worker
//!   per site (`engine_scale/threaded`) over the same fleet on a single
//!   worker (`engine_scale/serial`). The arms are byte-identical, so
//!   this gate bounds a *speedup*: threaded must stay at or below the
//!   `fleet_scale_ratio` baseline (0.7× serial) on multi-core runners.
//!   On hosts where the `engine_scale/parallelism` pseudo-entry reports
//!   fewer than 2 cores the gate is skipped with a printed note —
//!   lockstep threading cannot beat serial without cores to run on.
//!
//! Ratios, not absolute times: CI machines vary wildly in speed, but cost
//! relative to a same-machine reference is a property of the code. Exits
//! non-zero when a measured ratio exceeds `baseline × (1 + max_regression)`.
//!
//! ```text
//! BENCH_JSON=BENCH_ci.json cargo bench -p dmhpc-bench --bench bench_experiment
//! cargo run -p dmhpc-bench --bin bench_gate -- BENCH_ci.json crates/bench/BENCH_baseline.json
//! ```

use dmhpc_metrics::json::parse;

const RUN_BENCH: &str = "experiment_runner/run/1";
const RAW_BENCH: &str = "experiment_runner/raw_cells";
const KERNEL_CAL_BENCH: &str = "engine_kernel/calendar";
const KERNEL_HEAP_BENCH: &str = "engine_kernel/heap";
const FAULTS_STORM_BENCH: &str = "engine_faults/storm";
const FAULTS_NONE_BENCH: &str = "engine_faults/none";
const OBSERVERS_FULL_BENCH: &str = "engine_observers/full";
const OBSERVERS_NONE_BENCH: &str = "engine_observers/none";
const SERVICE_SKETCH_BENCH: &str = "engine_service/sketch";
const SERVICE_JOBSTATS_BENCH: &str = "engine_service/jobstats";
const DEADLINE_EDF_BENCH: &str = "engine_deadline/edf";
const DEADLINE_FCFS_BENCH: &str = "engine_deadline/fcfs";
const ADMISSION_GUARDED_BENCH: &str = "engine_admission/guarded";
const ADMISSION_EDF_BENCH: &str = "engine_admission/edf";
const SCALE_THREADED_BENCH: &str = "engine_scale/threaded";
const SCALE_SERIAL_BENCH: &str = "engine_scale/serial";
const SCALE_PARALLELISM: &str = "engine_scale/parallelism";

fn mean_of(lines: &str, bench: &str) -> Result<f64, String> {
    // Last occurrence wins: re-runs append.
    let mut found = None;
    for line in lines.lines().filter(|l| !l.trim().is_empty()) {
        let doc = parse(line).map_err(|e| format!("bad bench-results line {line:?}: {e}"))?;
        let name = doc
            .expect_key("name")
            .and_then(|n| n.to_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        if name == bench {
            let mean = doc
                .expect_key("mean_ns")
                .and_then(|m| m.to_f64())
                .map_err(|e| e.to_string())?;
            found = Some(mean);
        }
    }
    found.ok_or_else(|| {
        format!("benchmark {bench:?} not found in results (did bench_experiment run?)")
    })
}

/// Check one ratio gate; returns an error message when it regressed.
fn gate(
    label: &str,
    num_name: &str,
    den_name: &str,
    num_ns: f64,
    den_ns: f64,
    baseline_ratio: f64,
    max_regression: f64,
) -> Result<(), String> {
    if den_ns <= 0.0 {
        return Err(format!("{den_name} mean is not positive ({den_ns} ns)"));
    }
    let ratio = num_ns / den_ns;
    let limit = baseline_ratio * (1.0 + max_regression);
    println!("{label}: {num_name} = {num_ns:.0} ns, {den_name} = {den_ns:.0} ns");
    println!(
        "measured ratio {ratio:.3} vs baseline {baseline_ratio:.3} \
         (limit {limit:.3} = baseline × {:.2})",
        1.0 + max_regression
    );
    if ratio > limit {
        return Err(format!(
            "{label} regressed: ratio {ratio:.3} exceeds limit {limit:.3}"
        ));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [results_path, baseline_path] = args.as_slice() else {
        return Err("usage: bench_gate <bench-results.jsonl> <baseline.json>".into());
    };

    let results = std::fs::read_to_string(results_path)
        .map_err(|e| format!("reading {results_path}: {e}"))?;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = parse(&baseline_text)?;
    let max_regression = baseline.expect_key("max_regression")?.to_f64()?;

    gate(
        "runner overhead",
        RUN_BENCH,
        RAW_BENCH,
        mean_of(&results, RUN_BENCH)?,
        mean_of(&results, RAW_BENCH)?,
        baseline.expect_key("runner_overhead_ratio")?.to_f64()?,
        max_regression,
    )?;
    gate(
        "kernel calendar-vs-heap",
        KERNEL_CAL_BENCH,
        KERNEL_HEAP_BENCH,
        mean_of(&results, KERNEL_CAL_BENCH)?,
        mean_of(&results, KERNEL_HEAP_BENCH)?,
        baseline
            .expect_key("kernel_calendar_vs_heap_ratio")?
            .to_f64()?,
        max_regression,
    )?;
    gate(
        "fault storm vs clean kernel",
        FAULTS_STORM_BENCH,
        FAULTS_NONE_BENCH,
        mean_of(&results, FAULTS_STORM_BENCH)?,
        mean_of(&results, FAULTS_NONE_BENCH)?,
        baseline.expect_key("faults_vs_clean_ratio")?.to_f64()?,
        max_regression,
    )?;
    gate(
        "observer overhead",
        OBSERVERS_FULL_BENCH,
        OBSERVERS_NONE_BENCH,
        mean_of(&results, OBSERVERS_FULL_BENCH)?,
        mean_of(&results, OBSERVERS_NONE_BENCH)?,
        baseline.expect_key("observer_overhead_ratio")?.to_f64()?,
        max_regression,
    )?;
    gate(
        "service sketch vs jobstats",
        SERVICE_SKETCH_BENCH,
        SERVICE_JOBSTATS_BENCH,
        mean_of(&results, SERVICE_SKETCH_BENCH)?,
        mean_of(&results, SERVICE_JOBSTATS_BENCH)?,
        baseline.expect_key("sketch_vs_jobstats_ratio")?.to_f64()?,
        max_regression,
    )?;
    gate(
        "deadline ordering vs fcfs",
        DEADLINE_EDF_BENCH,
        DEADLINE_FCFS_BENCH,
        mean_of(&results, DEADLINE_EDF_BENCH)?,
        mean_of(&results, DEADLINE_FCFS_BENCH)?,
        baseline.expect_key("deadline_vs_fcfs_ratio")?.to_f64()?,
        max_regression,
    )?;
    gate(
        "admission stack vs edf",
        ADMISSION_GUARDED_BENCH,
        ADMISSION_EDF_BENCH,
        mean_of(&results, ADMISSION_GUARDED_BENCH)?,
        mean_of(&results, ADMISSION_EDF_BENCH)?,
        baseline.expect_key("admission_vs_edf_ratio")?.to_f64()?,
        max_regression,
    )?;
    // The federation gate bounds a speedup, so it only means anything on
    // a host with cores to parallelize over: the bench records the
    // machine's parallelism next to its timings, and on a single-core
    // runner the gate is skipped — loudly, so CI logs show the skip.
    let parallelism = mean_of(&results, SCALE_PARALLELISM)?;
    if parallelism < 2.0 {
        println!(
            "federation scaling: SKIPPED (host parallelism {parallelism:.0} < 2 — \
             lockstep threading cannot beat serial without cores; the ratio \
             is gated on multi-core CI runners)"
        );
    } else {
        gate(
            "federation scaling",
            SCALE_THREADED_BENCH,
            SCALE_SERIAL_BENCH,
            mean_of(&results, SCALE_THREADED_BENCH)?,
            mean_of(&results, SCALE_SERIAL_BENCH)?,
            baseline.expect_key("fleet_scale_ratio")?.to_f64()?,
            max_regression,
        )?;
    }
    println!("bench gate OK");
    Ok(())
}
