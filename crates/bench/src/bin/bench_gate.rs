//! CI bench-regression gate for the experiment-runner overhead.
//!
//! Reads the JSON-lines file the criterion-shim emits when `BENCH_JSON`
//! is set (one `{"name", "mean_ns", "std_ns"}` object per benchmark) and
//! compares the *runner overhead ratio* — the whole declarative path
//! (`experiment_runner/run/1`) over the same cells simulated by hand
//! (`experiment_runner/raw_cells`) — against a checked-in baseline.
//!
//! A ratio, not an absolute time: CI machines vary wildly in speed, but
//! the runner's bookkeeping relative to raw simulation cost is a property
//! of the code. Exits non-zero when the measured ratio exceeds
//! `baseline × (1 + max_regression)`.
//!
//! ```text
//! BENCH_JSON=BENCH_ci.json cargo bench -p dmhpc-bench --bench bench_experiment
//! cargo run -p dmhpc-bench --bin bench_gate -- BENCH_ci.json crates/bench/BENCH_baseline.json
//! ```

use dmhpc_metrics::json::parse;

const RUN_BENCH: &str = "experiment_runner/run/1";
const RAW_BENCH: &str = "experiment_runner/raw_cells";

fn mean_of(lines: &str, bench: &str) -> Result<f64, String> {
    // Last occurrence wins: re-runs append.
    let mut found = None;
    for line in lines.lines().filter(|l| !l.trim().is_empty()) {
        let doc = parse(line).map_err(|e| format!("bad bench-results line {line:?}: {e}"))?;
        let name = doc
            .expect_key("name")
            .and_then(|n| n.to_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        if name == bench {
            let mean = doc
                .expect_key("mean_ns")
                .and_then(|m| m.to_f64())
                .map_err(|e| e.to_string())?;
            found = Some(mean);
        }
    }
    found.ok_or_else(|| {
        format!("benchmark {bench:?} not found in results (did bench_experiment run?)")
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [results_path, baseline_path] = args.as_slice() else {
        return Err("usage: bench_gate <bench-results.jsonl> <baseline.json>".into());
    };

    let results = std::fs::read_to_string(results_path)
        .map_err(|e| format!("reading {results_path}: {e}"))?;
    let run_ns = mean_of(&results, RUN_BENCH)?;
    let raw_ns = mean_of(&results, RAW_BENCH)?;
    if raw_ns <= 0.0 {
        return Err(format!("{RAW_BENCH} mean is not positive ({raw_ns} ns)").into());
    }
    let ratio = run_ns / raw_ns;

    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = parse(&baseline_text)?;
    let baseline_ratio = baseline.expect_key("runner_overhead_ratio")?.to_f64()?;
    let max_regression = baseline.expect_key("max_regression")?.to_f64()?;
    let limit = baseline_ratio * (1.0 + max_regression);

    println!("runner overhead: {RUN_BENCH} = {run_ns:.0} ns, {RAW_BENCH} = {raw_ns:.0} ns");
    println!(
        "measured ratio {ratio:.3} vs baseline {baseline_ratio:.3} \
         (limit {limit:.3} = baseline × {:.2})",
        1.0 + max_regression
    );
    if ratio > limit {
        return Err(format!(
            "runner overhead regressed: ratio {ratio:.3} exceeds limit {limit:.3}"
        )
        .into());
    }
    println!("bench gate OK");
    Ok(())
}
