//! # dmhpc-bench — the reproduction harness
//!
//! One function per table/figure of the reconstructed evaluation (see
//! `DESIGN.md` §6). Each experiment returns its printed rows; the `repro`
//! binary dispatches on experiment id and also writes the output under
//! `results/`. Criterion performance benches (reproduction target T3) live
//! in `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
