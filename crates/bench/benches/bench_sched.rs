//! T3: scheduling-pass latency vs queue depth (EASY and conservative).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmhpc_des::time::SimTime;
use dmhpc_platform::{Cluster, ClusterSpec, MemoryAssignment, NodeId, NodeSpec, PoolTopology};
use dmhpc_sched::{
    BackfillPolicy, MemoryPolicy, ReleaseIndex, RunningRelease, Scheduler, SchedulerBuilder,
    WaitQueue,
};
use dmhpc_workload::SystemPreset;

/// A mostly-full cluster with a populated queue: the worst case for a pass.
fn setup(depth: usize) -> (Cluster, WaitQueue, ReleaseIndex) {
    let mut cluster = Cluster::new(ClusterSpec::new(
        8,
        32,
        NodeSpec::new(64, 256 * 1024),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    ));
    // Fill 95% of nodes with running leases ending at staggered times.
    let mut releases = ReleaseIndex::new();
    let busy = (cluster.total_nodes() as usize * 95) / 100;
    for i in 0..busy {
        let node = NodeId(i as u32);
        let a = MemoryAssignment::local(vec![node], 64 * 1024);
        let lease = 1_000_000 + i as u64;
        cluster.allocate(lease, a).unwrap();
        let mut nodes_per_rack = vec![0u32; 8];
        nodes_per_rack[i / 32] += 1;
        releases.insert(
            lease,
            RunningRelease {
                planned_end: SimTime::from_secs(600 + (i as u64 % 96) * 600),
                nodes_per_rack,
                pool_per_domain: vec![0; 8],
            },
        );
    }
    let spec = SystemPreset::MidCluster.synthetic_spec(depth);
    let w = spec.generate(11);
    let mut queue = WaitQueue::new();
    for job in w.iter() {
        queue.push(job.clone(), SimTime::ZERO);
    }
    (cluster, queue, releases)
}

fn pass(sched: &Scheduler, cluster: &Cluster, queue: &WaitQueue, releases: &ReleaseIndex) {
    let mut c = cluster.clone();
    let mut q = queue.clone();
    black_box(sched.schedule(SimTime::from_secs(600_000), &mut q, &mut c, releases.view()));
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_pass");
    group.sample_size(10);
    for &depth in &[16usize, 128, 512] {
        let (cluster, queue, releases) = setup(depth);
        let easy = Scheduler::new(
            SchedulerBuilder::new()
                .backfill(BackfillPolicy::Easy)
                .memory(MemoryPolicy::SlowdownAware { max_dilation: 1.35 })
                .build(),
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::new("easy", depth), &depth, |b, _| {
            b.iter(|| pass(&easy, &cluster, &queue, &releases))
        });
        let cons = Scheduler::new(
            SchedulerBuilder::new()
                .backfill(BackfillPolicy::Conservative)
                .memory(MemoryPolicy::SlowdownAware { max_dilation: 1.35 })
                .build(),
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::new("conservative", depth), &depth, |b, _| {
            b.iter(|| pass(&cons, &cluster, &queue, &releases))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
