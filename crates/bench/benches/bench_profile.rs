//! T3: two-resource availability-profile operations vs horizon length.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_platform::{Cluster, ClusterSpec, NodeSpec, PoolTopology};
use dmhpc_sched::{AvailabilityProfile, Demand, Release};

fn make(releases: usize) -> (Cluster, Vec<Release>) {
    let cluster = Cluster::new(ClusterSpec::new(
        8,
        32,
        NodeSpec::new(64, 256 * 1024),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    ));
    let mut rng = Pcg64::new(3);
    let rels = (0..releases)
        .map(|_| Release {
            time: SimTime::from_secs(rng.bounded_u64(100_000)),
            nodes_per_rack: (0..8).map(|_| rng.bounded_u64(3) as u32).collect(),
            pool_per_domain: (0..8).map(|_| rng.bounded_u64(64 * 1024)).collect(),
        })
        .collect();
    (cluster, rels)
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability_profile");
    group.sample_size(20);
    for &n in &[16usize, 128, 1024] {
        let (cluster, rels) = make(n);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                black_box(AvailabilityProfile::from_cluster(
                    SimTime::ZERO,
                    &cluster,
                    &rels,
                ))
            })
        });
        let profile = AvailabilityProfile::from_cluster(SimTime::ZERO, &cluster, &rels);
        group.bench_with_input(BenchmarkId::new("earliest_fit", n), &n, |b, _| {
            b.iter(|| {
                black_box(profile.earliest_fit(
                    SimTime::ZERO,
                    SimDuration::from_hours(2),
                    &Demand {
                        nodes: 64,
                        remote_per_node: 32 * 1024,
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
