//! T3: pending-event-set throughput — binary heap vs calendar queue.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmhpc_des::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::SimTime;

/// The classic "hold" pattern: steady-state queue of size n, repeatedly pop
/// the minimum and schedule a new event a random offset ahead.
fn hold<Q: EventQueue<u64>>(q: &mut Q, rng: &mut Pcg64, ops: usize) {
    for i in 0..ops {
        let (t, _) = q.pop().expect("queue non-empty");
        q.schedule(
            t + dmhpc_des::time::SimDuration::from_micros(rng.bounded_u64(10_000_000)),
            i as u64,
        );
    }
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut rng = Pcg64::new(1);
                    let mut q = BinaryHeapQueue::new();
                    for i in 0..n {
                        q.schedule(SimTime::from_micros(rng.bounded_u64(10_000_000)), i as u64);
                    }
                    (q, rng)
                },
                |(mut q, mut rng)| hold(&mut q, &mut rng, black_box(10_000)),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut rng = Pcg64::new(1);
                    let mut q = CalendarQueue::new();
                    for i in 0..n {
                        q.schedule(SimTime::from_micros(rng.bounded_u64(10_000_000)), i as u64);
                    }
                    (q, rng)
                },
                |(mut q, mut rng)| hold(&mut q, &mut rng, black_box(10_000)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
