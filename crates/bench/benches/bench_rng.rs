//! T3: generator and distribution sampling throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmhpc_des::rng::dist::{Distribution, Exponential, Gamma, HyperGamma, LogNormal};
use dmhpc_des::rng::Pcg64;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.sample_size(20);
    group.bench_function("pcg64_next_u64_x1000", |b| {
        let mut rng = Pcg64::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    group.bench_function("exponential_x1000", |b| {
        let mut rng = Pcg64::new(7);
        let d = Exponential::with_mean(100.0);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.bench_function("lognormal_x1000", |b| {
        let mut rng = Pcg64::new(7);
        let d = LogNormal::with_median(64.0, 0.8);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.bench_function("hypergamma_x1000", |b| {
        let mut rng = Pcg64::new(7);
        let d = HyperGamma::new(0.7, Gamma::new(2.0, 800.0), Gamma::new(2.0, 6000.0));
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
