//! Experiment-runner overhead on a small grid.
//!
//! Measures the full declarative path — grid compilation, workload
//! materialization/caching, parallel fan-out, result labelling — against
//! the raw per-cell simulation cost, so later sweep-scaling work (sharding,
//! result caching, incremental grids) has a baseline to beat. The grid is
//! deliberately small and the workload short: the interesting number is
//! the fixed overhead around the simulations, not the simulations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmhpc_des::time::SimDuration;
use dmhpc_platform::{PoolTopology, SlowdownModel};
use dmhpc_sched::{AdmissionPolicy, MemoryPolicy, MetaPolicyKind, OrderPolicy, SchedulerBuilder};
use dmhpc_sim::observe::{EventCounter, SampledSeriesProbe, TraceSink};
use dmhpc_sim::scenarios::{default_slowdown, policy_suite, preset_cluster};
use dmhpc_sim::{
    EventQueueKind, ExperimentRunner, ExperimentSpec, FleetSimulation, FleetSpec, Shard, SimConfig,
    Simulation,
};
use dmhpc_workload::source::JobSource as _;
use dmhpc_workload::{SloModel, SystemPreset};

const JOBS: usize = 120;

fn small_grid() -> ExperimentSpec {
    ExperimentSpec::builder("bench-grid")
        .preset(SystemPreset::HighThroughput, JOBS)
        .pools([
            PoolTopology::None,
            PoolTopology::PerRack {
                mib_per_rack: 384 * 1024,
            },
        ])
        .load(0.8)
        .seed(17)
        .schedulers(policy_suite(default_slowdown()))
        .build()
        .expect("bench grid is well-formed")
}

fn bench_experiment(c: &mut Criterion) {
    let spec = small_grid();
    let cells = spec.cell_count() as u64;

    let mut group = c.benchmark_group("experiment_runner");
    group.sample_size(10);

    // Compilation alone: pure grid expansion + validation, no simulation.
    group.throughput(Throughput::Elements(cells));
    group.bench_function("compile", |b| {
        b.iter(|| black_box(spec.compile().expect("valid grid")))
    });

    // Spec (de)serialization: the config-file path.
    group.bench_function("json_round_trip", |b| {
        b.iter(|| {
            let json = spec.to_json().expect("serializable");
            black_box(ExperimentSpec::from_json(&json).expect("parses back"))
        })
    });

    // Whole grid, serial vs parallel: the difference is the fan-out win;
    // `serial` vs `raw_cells` below is the runner's bookkeeping overhead.
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("run", threads), &threads, |b, &t| {
            let runner = ExperimentRunner::with_threads(t);
            b.iter(|| black_box(runner.run(&spec).expect("validated grid runs")))
        });
    }

    // The same cells simulated by hand against a pre-materialized
    // workload: the floor the runner's overhead sits on.
    let compiled = spec.compile().expect("valid grid");
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(JOBS)
        .generate(17);
    group.bench_function("raw_cells", |b| {
        b.iter(|| {
            for cell in &compiled {
                let sim = Simulation::new(black_box(cell.config)).expect("valid config");
                black_box(sim.run(&workload));
            }
        })
    });
    group.finish();
}

fn bench_grid_scaling(c: &mut Criterion) {
    // The scaling layer itself: what does a fully warm cached run cost
    // relative to simulating (`run/1` above), and what does sharding the
    // grid cost beyond compilation?
    let spec = small_grid();
    let cells = spec.cell_count() as u64;
    let dir = std::env::temp_dir().join(format!("dmhpc-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut group = c.benchmark_group("grid_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));

    // Populate the cache once (cold run), then measure all-hit replays:
    // the number every future "skip unchanged cells" feature banks on.
    let runner = ExperimentRunner::with_threads(1)
        .cache_dir(&dir)
        .expect("temp cache dir is writable");
    let cold = runner.run(&spec).expect("cold run populates the cache");
    assert_eq!(cold.stats().cache_hits, 0);
    group.bench_function("warm_cache_run", |b| {
        b.iter(|| {
            let results = runner.run(&spec).expect("warm run loads from cache");
            assert_eq!(results.stats().simulated, 0, "warm run must not simulate");
            black_box(results)
        })
    });

    // Cell hashing alone: the per-cell cost every cached run pays even
    // on a miss.
    group.bench_function("cell_hashes", |b| {
        b.iter(|| black_box(spec.cell_hashes().expect("valid grid")))
    });

    // Shard partitioning (compile + filter), the per-process startup cost
    // of a fan-out.
    group.bench_function("shard_partition", |b| {
        let shard = Shard::new(0, 4).expect("valid shard");
        b.iter(|| black_box(spec.shard(shard).expect("valid grid")))
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_single_cell(c: &mut Criterion) {
    // Reference: one simulation outside any grid machinery.
    let spec = small_grid();
    let cell = spec.compile().expect("valid grid").remove(0);
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(JOBS)
        .generate(17);
    let mut group = c.benchmark_group("experiment_cell");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * JOBS as u64));
    group.bench_function("single_cell", |b| {
        let sim = Simulation::new(cell.config).expect("valid config");
        b.iter(|| black_box(sim.run(&workload)))
    });
    group.finish();
}

fn bench_engine_kernel(c: &mut Criterion) {
    // Engine throughput (events/sec) on a large high-load workload, heap
    // vs calendar pending-event set — the number the incremental kernel
    // moves. The contention model keeps the pool-scoped re-dilation path
    // hot, which is the expensive regime.
    const KERNEL_JOBS: usize = 2_000;
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(KERNEL_JOBS)
        .generate(23);
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let cfg = SimConfig::new(cluster, sched);

    // One reference run: fix the throughput denominator and report the
    // pass sparsity the event-driven kernel achieves at this load.
    let reference = Simulation::new(cfg).expect("valid config").run(&workload);
    assert!(
        reference.passes < reference.events_processed,
        "kernel must schedule fewer passes than events"
    );
    eprintln!(
        "engine_kernel: {} events, {} passes ({:.1}% of events)",
        reference.events_processed,
        reference.passes,
        100.0 * reference.passes as f64 / reference.events_processed as f64
    );

    let mut group = c.benchmark_group("engine_kernel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let sim = Simulation::new(cfg.with_event_queue(kind)).expect("valid config");
        group.bench_function(kind.name(), |b| b.iter(|| black_box(sim.run(&workload))));
    }
    group.finish();
}

fn bench_engine_faults(c: &mut Criterion) {
    // Fault-path cost: the same high-load contention workload once
    // fault-free and once under the canned fault storm (node failures,
    // drains, pool degradations, checkpoint/restart). The `bench_gate`
    // bounds the faults/clean throughput ratio so the availability
    // subsystem cannot silently slow the kernel — on fault-free runs the
    // path is dead code, and even under an active storm the overhead is
    // interruption-work, not per-event tax.
    const FAULT_JOBS: usize = 1_500;
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(FAULT_JOBS)
        .generate(29);
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let cfg = SimConfig::new(cluster, sched);

    let clean = Simulation::new(cfg).expect("valid config");
    let faulty = Simulation::new(cfg)
        .expect("valid config")
        .with_fault_spec(dmhpc_bench::experiments::default_fault_scenario())
        .expect("valid scenario");
    let reference = faulty.run(&workload);
    assert!(
        reference.faults.interruptions > 0,
        "fault storm must actually interrupt jobs at this load"
    );
    eprintln!(
        "engine_faults: {} events, {} interruptions, {} resubmissions, {} failed",
        reference.events_processed,
        reference.faults.interruptions,
        reference.faults.resubmissions,
        reference.report.failed,
    );

    let mut group = c.benchmark_group("engine_faults");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    group.bench_function("none", |b| b.iter(|| black_box(clean.run(&workload))));
    group.bench_function("storm", |b| b.iter(|| black_box(faulty.run(&workload))));
    group.finish();
}

fn bench_engine_observers(c: &mut Criterion) {
    // Observer overhead: the same high-load contention workload with the
    // default observer set only (`none` — the built-ins that assemble
    // SimOutput) versus the full extra set attached (`full`: a streaming
    // JSONL TraceSink, a cadence-sampled series probe, and an event
    // counter). `bench_gate` bounds the full/none throughput ratio so the
    // observation layer cannot silently tax the kernel — extras pay one
    // virtual dispatch per event plus their own work, never a change to
    // the simulation itself (traces are bit-identical; asserted here).
    const OBS_JOBS: usize = 1_500;
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(OBS_JOBS)
        .generate(31);
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let cfg = SimConfig::new(cluster, sched);
    let sim = Simulation::new(cfg).expect("valid config");
    let reference = sim.run(&workload);
    let trace_path = std::env::temp_dir().join(format!(
        "dmhpc-bench-observers-{}.jsonl",
        std::process::id()
    ));

    // One observed reference run: the attached extras must be trace- and
    // metric-neutral, or the ratio below measures the wrong thing.
    {
        let mut trace = TraceSink::create(&trace_path).expect("temp trace");
        let mut probe = SampledSeriesProbe::new(SimDuration::from_secs(3600));
        let mut counter = EventCounter::new();
        let observed = sim.run_with(
            &workload,
            dmhpc_sim::ObserverSet::new()
                .watch(&mut trace)
                .watch(&mut probe)
                .watch(&mut counter),
        );
        assert_eq!(
            observed.trace_hash, reference.trace_hash,
            "observers must be neutral"
        );
        let events = trace.finish().expect("trace flushes");
        eprintln!(
            "engine_observers: {} engine events -> {} observed events, {} samples",
            reference.events_processed,
            events,
            probe.samples().len()
        );
    }

    let mut group = c.benchmark_group("engine_observers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    group.bench_function("none", |b| b.iter(|| black_box(sim.run(&workload))));
    group.bench_function("full", |b| {
        b.iter(|| {
            let mut trace = TraceSink::create(&trace_path).expect("temp trace");
            let mut probe = SampledSeriesProbe::new(SimDuration::from_secs(3600));
            let mut counter = EventCounter::new();
            black_box(
                sim.run_with(
                    &workload,
                    dmhpc_sim::ObserverSet::new()
                        .watch(&mut trace)
                        .watch(&mut probe)
                        .watch(&mut counter),
                ),
            )
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&trace_path);
}

fn bench_engine_service(c: &mut Criterion) {
    // Open-system service cost: the *same job stream* once as an
    // open-system run (pull-based admission straight from the arrival
    // source, O(1)-memory sketch metrics) and once pre-materialized into
    // a closed workload on the record-keeping job-stats path. Identical
    // jobs at identical submit times, so the ratio isolates the service
    // machinery — source refills per arrival plus the sketch observer —
    // from load effects. `bench_gate` bounds the sketch/jobstats time
    // ratio so streaming admission cannot silently cost more than the
    // path it replaces.
    const SERVICE_JOBS: usize = 1_500;
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let scenario = dmhpc_sim::ServiceSpec::open(SystemPreset::HighThroughput)
        .with_utilization(0.85)
        .with_horizon_jobs(SERVICE_JOBS as u64)
        .with_warmup_secs(3_600)
        .with_seed(37);
    let mut src = scenario.open_source(&cluster).expect("valid scenario");
    let workload =
        dmhpc_workload::Workload::from_jobs(std::iter::from_fn(|| src.next_job()).collect());
    assert_eq!(workload.len(), SERVICE_JOBS, "whole horizon materialized");
    let empty = dmhpc_workload::Workload::from_jobs(Vec::new());
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let cfg = SimConfig::new(cluster, sched);
    let closed = Simulation::new(cfg).expect("valid config");
    let open = Simulation::new(cfg)
        .expect("valid config")
        .with_service_spec(scenario)
        .expect("valid scenario");

    let reference = open.run(&empty);
    let svc = reference
        .service
        .expect("open runs report a service summary");
    assert_eq!(
        svc.observed + svc.warmup_skipped,
        SERVICE_JOBS as u64,
        "the stream's whole horizon must be accounted for"
    );
    assert!(reference.records.is_empty(), "sketch path keeps no records");
    // Pull-based admission must be trace-identical to pre-loading the
    // same stream as a closed batch — otherwise the two bench arms
    // simulate different histories and the ratio is meaningless.
    assert_eq!(
        closed.run(&workload).trace_hash,
        reference.trace_hash,
        "open admission replays the materialized stream bit-identically"
    );
    eprintln!(
        "engine_service: {} events, {} jobs measured ({} warmup), p99 wait {:.0}s",
        reference.events_processed, svc.observed, svc.warmup_skipped, svc.p99_wait_s
    );

    let mut group = c.benchmark_group("engine_service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    group.bench_function("jobstats", |b| b.iter(|| black_box(closed.run(&workload))));
    group.bench_function("sketch", |b| b.iter(|| black_box(open.run(&empty))));
    group.finish();
}

fn bench_engine_deadline(c: &mut Criterion) {
    // Deadline-ordering cost: the same deadline-stamped high-load
    // contention workload once under FCFS (the stamps are carried but
    // ignored) and once under EDF (every scheduling pass orders the queue
    // by the stamped absolute deadline through the policy context).
    // `bench_gate` bounds the edf/fcfs time ratio so deadline-aware
    // ordering cannot silently tax the scheduler — the stamps are data
    // the comparator reads, never extra simulation work, so the only
    // admissible cost is the deadline lookups inside the pass sort.
    const DEADLINE_JOBS: usize = 1_500;
    let mut wl_spec = SystemPreset::HighThroughput.synthetic_spec(DEADLINE_JOBS);
    wl_spec.slo = Some(SloModel {
        factor_min: 1.5,
        factor_max: 4.0,
    });
    let workload = wl_spec.generate(41);
    assert!(
        workload.jobs().iter().all(|j| j.slo.is_some()),
        "every job must carry a deadline stamp"
    );
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched_for = |order: OrderPolicy| {
        SchedulerBuilder::new()
            .order(order)
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .build()
    };
    let fcfs = Simulation::new(SimConfig::new(cluster, sched_for(OrderPolicy::Fcfs)))
        .expect("valid config");
    let edf = Simulation::new(SimConfig::new(cluster, sched_for(OrderPolicy::Edf)))
        .expect("valid config");

    // One reference run per arm: fix the throughput denominator and make
    // sure the two arms actually schedule different histories (otherwise
    // the heterogeneous stamps did not reorder anything and the ratio
    // measures nothing).
    let reference = fcfs.run(&workload);
    let edf_reference = edf.run(&workload);
    assert_ne!(
        reference.trace_hash, edf_reference.trace_hash,
        "EDF must reorder the deadline-stamped queue"
    );
    eprintln!(
        "engine_deadline: fcfs {} events, edf {} events",
        reference.events_processed, edf_reference.events_processed
    );

    let mut group = c.benchmark_group("engine_deadline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    group.bench_function("fcfs", |b| b.iter(|| black_box(fcfs.run(&workload))));
    group.bench_function("edf", |b| b.iter(|| black_box(edf.run(&workload))));
    group.finish();
}

fn bench_engine_admission(c: &mut Criterion) {
    // Admission-control cost: the same deadline-stamped workload once
    // under EDF with slowdown-aware placement (every stamped job is
    // admitted) and once under the full deadline stack — laxity-aware
    // placement plus infeasibility rejection. Both arms enumerate the
    // same candidate shapes, so the guarded arm's only extra work is the
    // laxity sort key and one feasibility probe per admission;
    // `bench_gate` bounds the guarded/edf time ratio so the admission
    // path cannot silently tax schedulers that never reject anything.
    const ADMISSION_JOBS: usize = 1_500;
    let mut wl_spec = SystemPreset::HighThroughput.synthetic_spec(ADMISSION_JOBS);
    wl_spec.slo = Some(SloModel {
        factor_min: 1.5,
        factor_max: 4.0,
    });
    let workload = wl_spec.generate(41);
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched_for = |memory: MemoryPolicy, admission: AdmissionPolicy| {
        SchedulerBuilder::new()
            .order(OrderPolicy::Edf)
            .memory(memory)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .admission(admission)
            .build()
    };
    let edf = Simulation::new(SimConfig::new(
        cluster,
        sched_for(
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
            AdmissionPolicy::AdmitAll,
        ),
    ))
    .expect("valid config");
    let guarded = Simulation::new(SimConfig::new(
        cluster,
        sched_for(
            MemoryPolicy::LaxityAware { max_dilation: 1.4 },
            AdmissionPolicy::RejectInfeasible,
        ),
    ))
    .expect("valid config");

    let reference = edf.run(&workload);
    let guarded_reference = guarded.run(&workload);
    assert_ne!(
        reference.trace_hash, guarded_reference.trace_hash,
        "the admission stack must change the schedule it guards"
    );
    eprintln!(
        "engine_admission: edf {} events, guarded {} events ({} rejected)",
        reference.events_processed,
        guarded_reference.events_processed,
        guarded_reference.report.rejected
    );

    let mut group = c.benchmark_group("engine_admission");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reference.events_processed));
    group.bench_function("edf", |b| b.iter(|| black_box(edf.run(&workload))));
    group.bench_function("guarded", |b| b.iter(|| black_box(guarded.run(&workload))));
    group.finish();
}

/// Append one extra line to the `BENCH_JSON` results file in the same
/// shape the criterion shim emits, so `bench_gate` can read host facts
/// (like available parallelism) next to the timings.
fn emit_bench_entry(name: &str, value: f64) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\": \"{name}\", \"mean_ns\": {value:.3}, \"std_ns\": 0.000}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("bench_experiment: cannot append to BENCH_JSON: {e}");
    }
}

fn bench_engine_scale(c: &mut Criterion) {
    // Federation scaling: the same 4-site fleet advanced by one worker
    // (`serial`) and by one worker per site (`threaded`), in conservative
    // lockstep epochs either way. Worker count is purely an execution
    // knob — the aggregates are byte-identical (asserted below) — so the
    // threaded/serial time ratio isolates the within-run parallelism win.
    // `bench_gate` bounds that ratio (`fleet_scale_ratio`) on multi-core
    // CI runners and skips the gate on single-core hosts, where lockstep
    // threading cannot beat serial; the `engine_scale/parallelism`
    // pseudo-entry emitted here is how the gate learns which case it is.
    const SCALE_JOBS: usize = 4_000;
    let workload = SystemPreset::HighThroughput
        .synthetic_spec(SCALE_JOBS)
        .generate(43);
    let cluster = preset_cluster(
        SystemPreset::HighThroughput,
        PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        },
    );
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let cfg = SimConfig::new(cluster, sched);
    let fleet = FleetSpec::symmetric(4, 300.0, MetaPolicyKind::LeastQueueDepth);
    let serial = FleetSimulation::new(&fleet, cfg)
        .expect("valid fleet")
        .workers(1);
    let threaded = FleetSimulation::new(&fleet, cfg)
        .expect("valid fleet")
        .workers(4);

    // One reference run per arm: worker count must be invisible in the
    // results, or the two arms time different computations.
    let ref_serial = serial.run(&workload);
    let ref_threaded = threaded.run(&workload);
    assert_eq!(
        ref_serial.aggregate.trace_hash, ref_threaded.aggregate.trace_hash,
        "worker count must not change fleet results"
    );
    assert_eq!(
        ref_serial.routed_jobs.iter().sum::<u64>(),
        SCALE_JOBS as u64
    );

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    emit_bench_entry("engine_scale/parallelism", parallelism as f64);
    eprintln!(
        "engine_scale: {} jobs over {} sites, routed {:?}, host parallelism {}",
        SCALE_JOBS,
        ref_serial.site_outputs.len(),
        ref_serial.routed_jobs,
        parallelism
    );

    let mut group = c.benchmark_group("engine_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCALE_JOBS as u64));
    group.bench_function("serial", |b| b.iter(|| black_box(serial.run(&workload))));
    group.bench_function("threaded", |b| {
        b.iter(|| black_box(threaded.run(&workload)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_experiment,
    bench_grid_scaling,
    bench_single_cell,
    bench_engine_kernel,
    bench_engine_faults,
    bench_engine_observers,
    bench_engine_service,
    bench_engine_deadline,
    bench_engine_admission,
    bench_engine_scale
);
criterion_main!(benches);
