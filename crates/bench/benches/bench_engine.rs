//! T3: end-to-end simulator throughput (events/second).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmhpc_platform::PoolTopology;
use dmhpc_sim::scenarios::{default_slowdown, policy_suite, preset_cluster, preset_workload};
use dmhpc_sim::{SimConfig, Simulation};
use dmhpc_workload::SystemPreset;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    for preset in [SystemPreset::HighThroughput, SystemPreset::MidCluster] {
        let n_jobs = 800usize;
        let w = preset_workload(preset, n_jobs, 5, 0.9);
        let cluster = preset_cluster(
            preset,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        );
        // ≥ 2 events per job (arrival + finish).
        group.throughput(Throughput::Elements(2 * n_jobs as u64));
        for sched in policy_suite(default_slowdown()).into_iter().take(2) {
            let sim = Simulation::new(SimConfig::new(cluster, sched)).expect("valid config");
            let label = format!("{}/{}", preset.name(), sched.label());
            group.bench_with_input(BenchmarkId::new(label, n_jobs), &w, |b, w| {
                b.iter(|| black_box(sim.run(w)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
