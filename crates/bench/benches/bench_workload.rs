//! T3: workload generation and SWF parse throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dmhpc_workload::swf::{parse_str, write_string, SwfConfig};
use dmhpc_workload::SystemPreset;

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    let n = 10_000usize;
    let spec = SystemPreset::MidCluster.synthetic_spec(n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("generate_10k", |b| b.iter(|| black_box(spec.generate(123))));

    let w = spec.generate(123);
    let cfg = SwfConfig {
        cores_per_node: 64,
        ..SwfConfig::default()
    };
    let text = write_string(&w, &cfg);
    group.bench_function("swf_parse_10k", |b| {
        b.iter(|| black_box(parse_str(&text, &cfg).unwrap()))
    });
    group.bench_function("swf_write_10k", |b| {
        b.iter(|| black_box(write_string(&w, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
