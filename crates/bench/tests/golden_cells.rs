//! Hash-neutrality goldens for the CI smoke grids.
//!
//! The SLO/deadline work added per-job `Slo` stamps, a scheduler-context
//! API, new ordering policies, and service-level budget-factor stamping.
//! All of it must be *absent-is-neutral*: a grid that never mentions
//! deadlines digests, hashes, and replays exactly as it did before the
//! feature existed — otherwise every pre-SLO result cache in the wild is
//! silently invalidated. These tests pin the cache cell keys of the three
//! long-standing smoke grids to the values captured before the redesign,
//! and prove a warm cache replays byte-identically on both event-queue
//! backends.

use dmhpc_bench::experiments;
use dmhpc_sim::{EventQueueKind, ExperimentRunner, ExperimentSpec};

/// `(cell label, cache cell key)` for every cell of a grid, captured
/// before SLO stamps / `SchedContext` / deadline policies existed.
const SMOKE_GOLDEN_CELLS: &[(&str, u64)] = &[
    (
        "no-pool|load0.80|seed1|fcfs+easy+local-only+sat1.5k3",
        0xf78438cad0676df3,
    ),
    (
        "no-pool|load0.80|seed1|fcfs+easy+pool-ff+sat1.5k3",
        0x2582b8a2e8186199,
    ),
    (
        "no-pool|load0.80|seed2|fcfs+easy+local-only+sat1.5k3",
        0xb3478e545677e454,
    ),
    (
        "no-pool|load0.80|seed2|fcfs+easy+pool-ff+sat1.5k3",
        0x39491907498b3c94,
    ),
    (
        "rack-384gib|load0.80|seed1|fcfs+easy+local-only+sat1.5k3",
        0x86215f88d9ee73c6,
    ),
    (
        "rack-384gib|load0.80|seed1|fcfs+easy+pool-ff+sat1.5k3",
        0xc28ef2263ac8559a,
    ),
    (
        "rack-384gib|load0.80|seed2|fcfs+easy+local-only+sat1.5k3",
        0x66c199bd834e1989,
    ),
    (
        "rack-384gib|load0.80|seed2|fcfs+easy+pool-ff+sat1.5k3",
        0xf539de4a8647e8eb,
    ),
];

const SMOKE_FAULTS_GOLDEN_CELLS: &[(&str, u64)] = &[
    ("no-pool|load0.80|seed1|fcfs+easy+pool-bf+con1.5g1", 0x16d5efaf3932b10b),
    ("no-pool|load0.80|seed1|fcfs+easy+slowdown-aware1.4+con1.5g1", 0xc0c6eb50e50a7648),
    ("no-pool|load0.80|seed1|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+pool-bf+con1.5g1", 0x9e5620d103868368),
    ("no-pool|load0.80|seed1|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0xeeb0b7787d5edf7f),
    ("no-pool|load0.80|seed2|fcfs+easy+pool-bf+con1.5g1", 0x488c51f81d17b402),
    ("no-pool|load0.80|seed2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0x7dea239731471f97),
    ("no-pool|load0.80|seed2|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+pool-bf+con1.5g1", 0x17e1602133128531),
    ("no-pool|load0.80|seed2|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0xcbbab97dfe515c34),
    ("rack-384gib|load0.80|seed1|fcfs+easy+pool-bf+con1.5g1", 0xff47b8433f20282c),
    ("rack-384gib|load0.80|seed1|fcfs+easy+slowdown-aware1.4+con1.5g1", 0x77b155c353eca84d),
    ("rack-384gib|load0.80|seed1|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+pool-bf+con1.5g1", 0x9f7922e241f79fe3),
    ("rack-384gib|load0.80|seed1|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0xd67772ecba3f4d7a),
    ("rack-384gib|load0.80|seed2|fcfs+easy+pool-bf+con1.5g1", 0x69bf476e443c2649),
    ("rack-384gib|load0.80|seed2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0x6ca18e6dcce0f292),
    ("rack-384gib|load0.80|seed2|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+pool-bf+con1.5g1", 0x3f1d46c0a8007856),
    ("rack-384gib|load0.80|seed2|gen21-mtbf900-drain3000-pdeg5000-ckpt120-r2|fcfs+easy+slowdown-aware1.4+con1.5g1", 0x4d11a71d77599261),
];

/// Open-system cells too: the run-wide wait SLO (`slo3600`) predates this
/// work and was already hashed, and the new optional budget-factor
/// stamping writes nothing when unset — so even service cells keep their
/// pre-redesign keys.
const SMOKE_SERVICE_GOLDEN_CELLS: &[(&str, u64)] = &[
    ("no-pool|load0.80|seed1|fcfs+easy+local-only+sat1.5k3", 0xf78438cad0676df3),
    ("no-pool|load0.80|seed1|fcfs+easy+pool-ff+sat1.5k3", 0x2582b8a2e8186199),
    ("no-pool|load0.80|seed1|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+local-only+sat1.5k3", 0x953d30caf65f9233),
    ("no-pool|load0.80|seed1|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+pool-ff+sat1.5k3", 0x726cf622ae34615d),
    ("no-pool|load0.80|seed2|fcfs+easy+local-only+sat1.5k3", 0xb3478e545677e454),
    ("no-pool|load0.80|seed2|fcfs+easy+pool-ff+sat1.5k3", 0x39491907498b3c94),
    ("no-pool|load0.80|seed2|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+local-only+sat1.5k3", 0xafc7856759328a7d),
    ("no-pool|load0.80|seed2|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+pool-ff+sat1.5k3", 0x1dd738309bfec43d),
    ("rack-384gib|load0.80|seed1|fcfs+easy+local-only+sat1.5k3", 0x86215f88d9ee73c6),
    ("rack-384gib|load0.80|seed1|fcfs+easy+pool-ff+sat1.5k3", 0xc28ef2263ac8559a),
    ("rack-384gib|load0.80|seed1|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+local-only+sat1.5k3", 0xc56b747081e0e13c),
    ("rack-384gib|load0.80|seed1|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+pool-ff+sat1.5k3", 0xe5d4a112d3a9a890),
    ("rack-384gib|load0.80|seed2|fcfs+easy+local-only+sat1.5k3", 0x66c199bd834e1989),
    ("rack-384gib|load0.80|seed2|fcfs+easy+pool-ff+sat1.5k3", 0xf539de4a8647e8eb),
    ("rack-384gib|load0.80|seed2|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+local-only+sat1.5k3", 0x98e3c1bfa61ba1ce),
    ("rack-384gib|load0.80|seed2|svc-htc-128-poisson-u0.85-j2000-w3600-slo3600|fcfs+easy+pool-ff+sat1.5k3", 0xf62413adcc9912f8),
];

fn assert_cells_match(spec: &ExperimentSpec, golden: &[(&str, u64)]) {
    let hashes = spec.cell_hashes().expect("spec compiles");
    assert_eq!(hashes.len(), golden.len(), "{}: cell count", spec.name);
    for ((key, hash), (label, want)) in hashes.iter().zip(golden) {
        assert_eq!(key.label(), *label, "{}: cell order/labels", spec.name);
        assert_eq!(
            hash, want,
            "{}: cache key for {label} drifted — pre-SLO result caches would miss",
            spec.name
        );
    }
}

#[test]
fn smoke_cell_keys_match_pre_slo_goldens() {
    assert_cells_match(&experiments::smoke_spec().unwrap(), SMOKE_GOLDEN_CELLS);
}

#[test]
fn smoke_faults_cell_keys_match_pre_slo_goldens() {
    assert_cells_match(
        &experiments::smoke_faults_spec().unwrap(),
        SMOKE_FAULTS_GOLDEN_CELLS,
    );
}

#[test]
fn smoke_service_cell_keys_match_pre_slo_goldens() {
    assert_cells_match(
        &experiments::smoke_service_spec().unwrap(),
        SMOKE_SERVICE_GOLDEN_CELLS,
    );
}

/// The deadline grid, by contrast, must NOT collide with any pre-SLO key:
/// its cells hash in the budget-factor stamp and (for non-FCFS cells) a
/// different ordering, so a shared cache can never serve a deadline cell
/// from a deadline-free run or vice versa.
#[test]
fn smoke_deadline_cell_keys_are_disjoint_from_goldens() {
    let spec = experiments::smoke_deadline_spec().unwrap();
    let golden: Vec<u64> = SMOKE_GOLDEN_CELLS
        .iter()
        .chain(SMOKE_FAULTS_GOLDEN_CELLS)
        .chain(SMOKE_SERVICE_GOLDEN_CELLS)
        .map(|&(_, h)| h)
        .collect();
    for (key, hash) in spec.cell_hashes().unwrap() {
        assert!(
            !golden.contains(&hash),
            "deadline cell {} collides with a pre-SLO cache key",
            key.label()
        );
    }
}

/// The federation grid splits the same way the service grid does: its
/// no-fleet baseline half must keep the exact pre-federation smoke keys
/// (so a shared cache serves both grids), while every federated cell
/// must be disjoint from *all* pre-federation goldens — a cache can
/// never serve a fleet cell from a single-cluster run or vice versa.
#[test]
fn smoke_fleet_baseline_keeps_goldens_and_fleet_cells_are_disjoint() {
    let spec = experiments::smoke_fleet_spec().unwrap();
    let golden: Vec<u64> = SMOKE_GOLDEN_CELLS
        .iter()
        .chain(SMOKE_FAULTS_GOLDEN_CELLS)
        .chain(SMOKE_SERVICE_GOLDEN_CELLS)
        .map(|&(_, h)| h)
        .collect();
    let smoke: Vec<u64> = SMOKE_GOLDEN_CELLS.iter().map(|&(_, h)| h).collect();
    let mut baseline = 0;
    for (key, hash) in spec.cell_hashes().unwrap() {
        match &key.fleet {
            None => {
                baseline += 1;
                assert!(
                    smoke.contains(&hash),
                    "no-fleet cell {} must keep its pre-federation smoke key",
                    key.label()
                );
            }
            Some(label) => {
                assert_eq!(label, "fleet4-least-queue-e300");
                assert!(
                    !golden.contains(&hash),
                    "fleet cell {} collides with a pre-federation cache key",
                    key.label()
                );
            }
        }
    }
    assert_eq!(baseline, SMOKE_GOLDEN_CELLS.len());
}

/// Federated cells round-trip through the result cache like plain cells:
/// cold-run the fleet grid on the heap backend, warm-replay on the
/// calendar backend — zero simulations, byte-identical exports. This
/// pins both cache replay of fleet aggregates and heap-vs-calendar
/// byte-identity of the federation engine, end to end through the grid
/// runner.
#[test]
fn smoke_fleet_warm_replay_is_byte_identical_across_backends() {
    let dir = std::env::temp_dir().join(format!("dmhpc-golden-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = experiments::smoke_fleet_spec().unwrap();

    let cold_runner = ExperimentRunner::with_threads(2)
        .event_queue(EventQueueKind::BinaryHeap)
        .cache_dir(&dir)
        .unwrap();
    let cold = cold_runner.run(&spec).unwrap();
    assert_eq!(cold.stats().simulated, cold.len(), "cold run simulates all");

    let warm_runner = ExperimentRunner::with_threads(2)
        .event_queue(EventQueueKind::Calendar)
        .cache_dir(&dir)
        .unwrap();
    let warm = warm_runner.run(&spec).unwrap();
    assert_eq!(warm.stats().simulated, 0, "warm run is all cache hits");
    assert_eq!(cold.to_csv(), warm.to_csv(), "CSV replays byte-identically");
    assert_eq!(cold.to_json(), warm.to_json(), "JSON too");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cold-run the smoke grid into a cache on one event-queue backend, then
/// warm-replay it on the *other* backend: zero simulations, and the
/// exported CSV and JSON documents are byte-identical. Backend choice and
/// replay must both be invisible in results — including the new trailing
/// `slo_attainment` column, which stays empty for this SLO-free grid.
#[test]
fn warm_replay_is_byte_identical_on_both_queue_backends() {
    let dir = std::env::temp_dir().join(format!("dmhpc-golden-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = experiments::smoke_spec().unwrap();

    let cold_runner = ExperimentRunner::with_threads(2)
        .event_queue(EventQueueKind::BinaryHeap)
        .cache_dir(&dir)
        .unwrap();
    let cold = cold_runner.run(&spec).unwrap();
    assert_eq!(cold.stats().simulated, cold.len(), "cold run simulates all");

    let warm_runner = ExperimentRunner::with_threads(2)
        .event_queue(EventQueueKind::Calendar)
        .cache_dir(&dir)
        .unwrap();
    let warm = warm_runner.run(&spec).unwrap();
    assert_eq!(warm.stats().simulated, 0, "warm run is all cache hits");
    assert_eq!(warm.stats().cache_hits, cold.len());

    assert_eq!(cold.to_csv(), warm.to_csv(), "CSV replays byte-identically");
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "JSON replays byte-identically"
    );
    // The SLO-free grid's new attainment column is present but empty.
    for line in cold.to_csv().trim_end().lines().skip(1) {
        assert!(line.ends_with(','));
    }
    assert!(!cold.to_json().contains("slo_attainment"));
    let _ = std::fs::remove_dir_all(&dir);
}
